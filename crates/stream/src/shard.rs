//! One shard: a hash partition of visits with bounded event batching.
//!
//! Shards are independent — a visit's whole lifetime lands on one shard,
//! so no cross-shard coordination is needed and shard count cannot change
//! results (the equivalence property tests pin this down for 1/2/8
//! shards). Events are buffered in a bounded inbox and applied in arrival
//! order when the inbox fills or the engine drains, amortizing per-event
//! overhead without reordering anything.

use std::collections::BTreeMap;

use sitm_core::{AnnotationSet, Duration, Episode, IntervalPredicate, Timestamp};

use crate::event::{StreamEvent, VisitKey};
use crate::live_index::LiveIndex;
use crate::live_query::{LiveVisit, ShardLive};
use crate::visit::{Anomalies, VisitSnapshot, VisitState};

/// The engine settings a shard needs to apply events, bundled so engine
/// and worker call sites stay stable as knobs are added. Borrowed from
/// the [`EngineConfig`](crate::EngineConfig) in force (predicates are
/// shared, not cloned — with `IntervalPredicate: Send + Sync` one table
/// serves every worker thread).
#[derive(Clone, Copy)]
pub struct ShardCtx<'a> {
    /// The episode detectors: `(P_ep, A'_traj)` pairs.
    pub predicates: &'a [(IntervalPredicate, AnnotationSet)],
    /// Drop zero-duration detections on arrival.
    pub drop_instantaneous: bool,
    /// Inbox size before buffered events are applied in a batch.
    pub batch_capacity: usize,
    /// How long after a visit closes its late events are still fenced
    /// (event-time deterministic; see
    /// [`EngineConfig::allowed_lateness`](crate::EngineConfig)).
    pub allowed_lateness: Duration,
    /// Cap on remembered close fences (smallest close instant evicted
    /// first).
    pub fence_capacity: usize,
    /// Keep accepted intervals in memory (and in checkpoints) so live
    /// queries can see each open visit's trajectory prefix.
    pub retain_intervals: bool,
    /// Keep each closed visit's completed trajectory until the
    /// warehouse drain (`take_finished`) collects it. Only meaningful
    /// with `retain_intervals` (the trajectory is assembled from the
    /// retained prefix at close); the engine config couples them.
    pub retain_finished: bool,
}

/// An episode the engine has finalized, tagged with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EmittedEpisode {
    /// The visit the episode belongs to.
    pub visit: VisitKey,
    /// The visit's moving object (`IDmo`).
    pub moving_object: String,
    /// Index into the engine's predicate table.
    pub predicate: usize,
    /// The episode, identical to what the batch extractor produces.
    pub episode: Episode,
}

impl EmittedEpisode {
    /// Global deterministic ordering: by episode time, then visit, then
    /// predicate, then range. Independent of shard count and drain timing.
    pub fn sort_key(&self) -> (Timestamp, Timestamp, u64, usize, usize) {
        (
            self.episode.time.start,
            self.episode.time.end,
            self.visit.0,
            self.predicate,
            self.episode.range.start,
        )
    }
}

/// Per-shard counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Events applied.
    pub events: u64,
    /// Presence intervals accepted into segmenters.
    pub presences: u64,
    /// Raw fixes applied.
    pub fixes: u64,
    /// Visits opened (explicitly or implicitly).
    pub visits_opened: u64,
    /// Visits closed.
    pub visits_closed: u64,
    /// Episodes finalized.
    pub episodes: u64,
    /// Inbox flushes performed.
    pub batches_flushed: u64,
    /// Rejected/adapted events.
    pub anomalies: Anomalies,
}

impl ShardStats {
    /// Adds another counter set in (used by the work-stealing runtime,
    /// whose workers deposit per-slice deltas into one shared total).
    pub fn absorb(&mut self, other: &ShardStats) {
        self.events += other.events;
        self.presences += other.presences;
        self.fixes += other.fixes;
        self.visits_opened += other.visits_opened;
        self.visits_closed += other.visits_closed;
        self.episodes += other.episodes;
        self.batches_flushed += other.batches_flushed;
        self.anomalies.absorb(&other.anomalies);
    }
}

/// Serializable shard state (inbox must be empty — the engine flushes
/// before snapshotting).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// High-water mark of applied event times.
    pub watermark: Option<Timestamp>,
    /// Open visits, ordered by key.
    pub visits: Vec<(u64, VisitSnapshot)>,
    /// Visits that have closed, with their close instants (late-event
    /// fencing; pruned once the watermark passes close + lateness).
    pub closed: Vec<(u64, Timestamp)>,
    /// Episodes finalized but not yet drained by the consumer.
    pub pending: Vec<EmittedEpisode>,
    /// Completed trajectories not yet taken by the warehouse drain
    /// (retained only under [`ShardCtx::retain_finished`]).
    pub finished: Vec<(u64, sitm_core::SemanticTrajectory)>,
    /// Counters.
    pub stats: ShardStats,
}

/// A hash partition of the visit space.
#[derive(Debug)]
pub struct Shard {
    inbox: Vec<StreamEvent>,
    visits: BTreeMap<u64, VisitState>,
    /// Closed visits and when they closed. An entry fences events
    /// timestamped within `close + allowed_lateness` of the close
    /// (event-time deterministic — no dependence on batch boundaries or
    /// worker scheduling); a later-stamped straggler retires the entry
    /// and re-opens the visit implicitly. Bounded at
    /// [`ShardCtx::fence_capacity`] by evicting the smallest close
    /// instant, so the map cannot grow with the total number of visits
    /// ever seen.
    closed: BTreeMap<u64, Timestamp>,
    /// `closed` ordered by close instant, for O(log n) capacity
    /// eviction.
    closed_order: std::collections::BTreeSet<(Timestamp, u64)>,
    pending: Vec<EmittedEpisode>,
    /// Completed trajectories awaiting the warehouse drain (see
    /// [`ShardCtx::retain_finished`]).
    finished: Vec<(u64, sitm_core::SemanticTrajectory)>,
    watermark: Option<Timestamp>,
    stats: ShardStats,
    scratch: Vec<(usize, Episode)>,
    /// Online postings over this shard's open visits (maintained only
    /// under [`ShardCtx::retain_intervals`]; empty otherwise). Not
    /// checkpointed — rebuilt from the retained intervals on restore.
    live_index: LiveIndex,
}

/// A shard dismantled into its state, for engines that keep visit state
/// in a different container (the work-stealing scheduler).
pub(crate) struct ShardParts {
    pub watermark: Option<Timestamp>,
    pub visits: BTreeMap<u64, VisitState>,
    pub closed: BTreeMap<u64, Timestamp>,
    pub pending: Vec<EmittedEpisode>,
    pub finished: Vec<(u64, sitm_core::SemanticTrajectory)>,
    pub stats: ShardStats,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Self {
        Shard {
            inbox: Vec::new(),
            visits: BTreeMap::new(),
            closed: BTreeMap::new(),
            closed_order: std::collections::BTreeSet::new(),
            pending: Vec::new(),
            finished: Vec::new(),
            watermark: None,
            stats: ShardStats::default(),
            scratch: Vec::new(),
            live_index: LiveIndex::new(),
        }
    }

    /// Buffers one event; applies the whole inbox when it reaches
    /// [`ShardCtx::batch_capacity`].
    pub fn enqueue(&mut self, event: StreamEvent, ctx: &ShardCtx<'_>) {
        self.inbox.push(event);
        if self.inbox.len() >= ctx.batch_capacity.max(1) {
            self.flush(ctx);
        }
    }

    /// Applies every buffered event in arrival order.
    pub fn flush(&mut self, ctx: &ShardCtx<'_>) {
        if self.inbox.is_empty() {
            return;
        }
        self.stats.batches_flushed += 1;
        let events = std::mem::take(&mut self.inbox);
        for event in events {
            self.apply(event, ctx);
        }
    }

    fn apply(&mut self, event: StreamEvent, ctx: &ShardCtx<'_>) {
        self.stats.events += 1;
        self.watermark = Some(match self.watermark {
            Some(w) => w.max(event.time()),
            None => event.time(),
        });
        let key = event.visit().0;
        if let Some(&closed_at) = self.closed.get(&key) {
            if event.time() <= closed_at + ctx.allowed_lateness {
                self.stats.anomalies.after_close += 1;
                return;
            }
            // The straggler is past the lateness horizon of the close:
            // retire the fence and treat the visit as new (it re-opens
            // implicitly below, or explicitly if this is an open).
            self.closed.remove(&key);
            self.closed_order.remove(&(closed_at, key));
        }
        match event {
            StreamEvent::VisitOpened {
                visit,
                moving_object,
                annotations,
                ..
            } => {
                if self.visits.contains_key(&visit.0) {
                    self.stats.anomalies.duplicate_opens += 1;
                    return;
                }
                self.stats.visits_opened += 1;
                self.visits.insert(
                    visit.0,
                    VisitState::new(moving_object, annotations, ctx, &mut self.stats.anomalies),
                );
            }
            StreamEvent::Fix { visit, cell, at } => {
                self.stats.fixes += 1;
                self.ensure_visit(visit, ctx);
                let state = self.visits.get_mut(&visit.0).expect("ensured above");
                let before = state.retained_intervals().len();
                state.apply_fix(cell, at, ctx, &mut self.scratch, &mut self.stats.anomalies);
                self.index_accepted(visit, before);
                self.collect(visit);
            }
            StreamEvent::Presence { visit, interval } => {
                self.stats.presences += 1;
                self.ensure_visit(visit, ctx);
                let state = self.visits.get_mut(&visit.0).expect("ensured above");
                let before = state.retained_intervals().len();
                state.apply_presence(interval, ctx, &mut self.scratch, &mut self.stats.anomalies);
                self.index_accepted(visit, before);
                self.collect(visit);
            }
            StreamEvent::VisitClosed { visit, at } => {
                let Some(mut state) = self.visits.remove(&visit.0) else {
                    self.stats.anomalies.after_close += 1;
                    return;
                };
                state.close(ctx, &mut self.scratch, &mut self.stats.anomalies);
                if ctx.retain_finished {
                    // The completed trajectory heads for the warehouse
                    // tier. A visit that accepted nothing has no trace
                    // (Def. 3.1) and produces no record.
                    if let Some(trajectory) = state.live_trajectory() {
                        self.finished.push((visit.0, trajectory));
                    }
                }
                self.stats.visits_closed += 1;
                self.closed.insert(visit.0, at);
                self.closed_order.insert((at, visit.0));
                // Capacity eviction: drop the oldest fence (possibly
                // this one). At any quiesce point both runtimes retain
                // the same cap-largest close instants; see
                // `EngineConfig::fence_capacity` for the (documented)
                // mid-stream divergence window above the cap.
                while self.closed.len() > ctx.fence_capacity.max(1) {
                    let &(evict_at, evict_key) =
                        self.closed_order.iter().next().expect("non-empty");
                    self.closed_order.remove(&(evict_at, evict_key));
                    self.closed.remove(&evict_key);
                }
                self.live_index.remove(visit.0);
                let moving_object = state.moving_object.clone();
                for (predicate, episode) in self.scratch.drain(..) {
                    self.stats.episodes += 1;
                    self.pending.push(EmittedEpisode {
                        visit,
                        moving_object: moving_object.clone(),
                        predicate,
                        episode,
                    });
                }
            }
        }
    }

    fn ensure_visit(&mut self, visit: VisitKey, ctx: &ShardCtx<'_>) {
        if !self.visits.contains_key(&visit.0) {
            // An observation for a visit never opened: open it implicitly
            // with a synthetic identity rather than dropping data.
            self.stats.anomalies.implicit_opens += 1;
            self.stats.visits_opened += 1;
            self.visits.insert(
                visit.0,
                VisitState::new(
                    format!("implicit-{}", visit.0),
                    AnnotationSet::from_iter([sitm_core::Annotation::goal("streamed")]),
                    ctx,
                    &mut self.stats.anomalies,
                ),
            );
        }
    }

    /// Feeds the intervals a visit accepted during the last apply into
    /// the live index (retention on makes acceptance observable as
    /// growth of the retained slice; retention off retains nothing and
    /// the index intentionally stays empty).
    fn index_accepted(&mut self, visit: VisitKey, before: usize) {
        let Shard {
            visits, live_index, ..
        } = self;
        let Some(state) = visits.get(&visit.0) else {
            return;
        };
        for interval in &state.retained_intervals()[before..] {
            live_index.observe(visit.0, &state.moving_object, interval);
        }
    }

    fn collect(&mut self, visit: VisitKey) {
        if self.scratch.is_empty() {
            return;
        }
        let moving_object = self
            .visits
            .get(&visit.0)
            .map(|s| s.moving_object.clone())
            .unwrap_or_default();
        for (predicate, episode) in self.scratch.drain(..) {
            self.stats.episodes += 1;
            self.pending.push(EmittedEpisode {
                visit,
                moving_object: moving_object.clone(),
                predicate,
                episode,
            });
        }
    }

    /// Takes every finalized-but-undrained episode.
    pub fn take_pending(&mut self) -> Vec<EmittedEpisode> {
        std::mem::take(&mut self.pending)
    }

    /// Returns a drained episode to the pending pool — the undo of
    /// [`Shard::take_pending`] for consumers that took a delta but could
    /// not deliver it (a push subscriber disconnecting mid-hand-off).
    /// The next drain re-emits it; global ordering is restored by the
    /// drain's deterministic sort.
    pub fn requeue_pending(&mut self, episode: EmittedEpisode) {
        self.pending.push(episode);
    }

    /// Takes every completed-but-unflushed trajectory (the warehouse
    /// drain; empty unless [`ShardCtx::retain_finished`]).
    pub fn take_finished(&mut self) -> Vec<(u64, sitm_core::SemanticTrajectory)> {
        std::mem::take(&mut self.finished)
    }

    /// Completed trajectories currently awaiting the warehouse drain.
    pub fn finished_backlog(&self) -> usize {
        self.finished.len()
    }

    /// Closes every open visit (end-of-stream).
    pub fn close_all(&mut self, ctx: &ShardCtx<'_>) {
        let keys: Vec<u64> = self.visits.keys().copied().collect();
        for key in keys {
            let at = self.watermark.unwrap_or(Timestamp(0));
            self.apply(
                StreamEvent::VisitClosed {
                    visit: VisitKey(key),
                    at,
                },
                ctx,
            );
        }
    }

    /// The shard's contribution to a live-query snapshot: every open
    /// visit's trajectory prefix (when intervals are retained), plus a
    /// copy of the finalized-but-undrained episodes. Visits without a
    /// queryable prefix yet are counted, not silently dropped.
    pub fn live_state(&self) -> ShardLive {
        let mut visits = Vec::new();
        let mut unqueryable = 0usize;
        for (key, state) in &self.visits {
            match state.live_trajectory() {
                Some(trajectory) => visits.push(LiveVisit {
                    visit: VisitKey(*key),
                    trajectory,
                }),
                None => unqueryable += 1,
            }
        }
        ShardLive {
            visits,
            pending: self.pending.clone(),
            watermark: self.watermark,
            unqueryable,
            index: self.live_index.clone(),
        }
    }

    /// The shard's incremental live index (empty unless intervals are
    /// retained).
    pub fn live_index(&self) -> &LiveIndex {
        &self.live_index
    }

    /// High-water mark of applied event times.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Open visits currently resident.
    pub fn open_visits(&self) -> usize {
        self.visits.len()
    }

    /// Events buffered but not yet applied.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Serializable state. The inbox must have been flushed.
    pub fn snapshot(&self) -> ShardSnapshot {
        debug_assert!(self.inbox.is_empty(), "flush before snapshot");
        ShardSnapshot {
            watermark: self.watermark,
            visits: self
                .visits
                .iter()
                .map(|(k, v)| (*k, v.snapshot()))
                .collect(),
            closed: self.closed.iter().map(|(k, t)| (*k, *t)).collect(),
            pending: self.pending.clone(),
            finished: self.finished.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds a shard from a snapshot taken against the same predicate
    /// table.
    pub fn restore(
        snapshot: ShardSnapshot,
        predicates: &[(IntervalPredicate, AnnotationSet)],
    ) -> Self {
        let visits: BTreeMap<u64, VisitState> = snapshot
            .visits
            .into_iter()
            .map(|(k, v)| (k, VisitState::restore(v, predicates)))
            .collect();
        // The index is not serialized; rebuild it from the retained
        // intervals (empty after retention reconciliation, matching the
        // unqueryable accounting).
        let mut live_index = LiveIndex::new();
        for (key, state) in &visits {
            for interval in state.retained_intervals() {
                live_index.observe(*key, &state.moving_object, interval);
            }
        }
        let closed: BTreeMap<u64, Timestamp> = snapshot.closed.into_iter().collect();
        Shard {
            inbox: Vec::new(),
            visits,
            closed_order: closed.iter().map(|(k, t)| (*t, *k)).collect(),
            closed,
            pending: snapshot.pending,
            finished: snapshot.finished,
            watermark: snapshot.watermark,
            stats: snapshot.stats,
            scratch: Vec::new(),
            live_index,
        }
    }

    /// Dismantles the shard (inbox must be empty — restore-time shards
    /// always are) so another runtime can adopt its state.
    pub(crate) fn into_parts(self) -> ShardParts {
        debug_assert!(self.inbox.is_empty(), "flush before dismantling");
        ShardParts {
            watermark: self.watermark,
            visits: self.visits,
            closed: self.closed,
            pending: self.pending,
            finished: self.finished,
            stats: self.stats,
        }
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, PresenceInterval, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn preds() -> Vec<(IntervalPredicate, AnnotationSet)> {
        vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))]
    }

    fn ctx<'a>(
        predicates: &'a [(IntervalPredicate, AnnotationSet)],
        batch_capacity: usize,
        allowed_lateness: Duration,
    ) -> ShardCtx<'a> {
        ShardCtx {
            predicates,
            drop_instantaneous: false,
            batch_capacity,
            allowed_lateness,
            fence_capacity: 65_536,
            retain_intervals: false,
            retain_finished: false,
        }
    }

    fn presence(v: u64, c: usize, start: i64, end: i64) -> StreamEvent {
        StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(start),
                Timestamp(end),
            ),
        }
    }

    #[test]
    fn inbox_batches_and_flushes_at_capacity() {
        let preds = preds();
        let ctx = ctx(&preds, 3, Duration::hours(1));
        let mut shard = Shard::new();
        let open = StreamEvent::VisitOpened {
            visit: VisitKey(1),
            moving_object: "m".into(),
            annotations: label("visit"),
            at: Timestamp(0),
        };
        shard.enqueue(open, &ctx);
        shard.enqueue(presence(1, 1, 0, 10), &ctx);
        assert_eq!(shard.inbox_len(), 2, "below capacity: buffered");
        assert_eq!(shard.open_visits(), 0);
        shard.enqueue(presence(1, 0, 10, 20), &ctx);
        assert_eq!(shard.inbox_len(), 0, "capacity reached: flushed");
        assert_eq!(shard.open_visits(), 1);
        assert_eq!(shard.stats().batches_flushed, 1);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1, "cell-1 run closed by cell-0 stay");
        assert_eq!(pending[0].moving_object, "m");
        assert_eq!(pending[0].episode.range, 0..1);
    }

    #[test]
    fn close_all_flushes_open_runs_and_fences_late_events() {
        let preds = preds();
        let ctx = ctx(&preds, 1, Duration::hours(1));
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(4),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &ctx,
        );
        shard.enqueue(presence(4, 1, 0, 10), &ctx);
        shard.close_all(&ctx);
        assert_eq!(shard.open_visits(), 0);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1, "open run closed at end-of-stream");
        // A late event for the closed visit is fenced.
        shard.enqueue(presence(4, 1, 20, 30), &ctx);
        assert_eq!(shard.stats().anomalies.after_close, 1);
        assert!(shard.take_pending().is_empty());
    }

    #[test]
    fn fence_entries_retire_past_allowed_lateness() {
        let preds = preds();
        let lateness = Duration::hours(1);
        let ctx = ctx(&preds, 1, lateness);
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(5),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &ctx,
        );
        shard.enqueue(
            StreamEvent::VisitClosed {
                visit: VisitKey(5),
                at: Timestamp(10),
            },
            &ctx,
        );
        // Within the lateness horizon: still fenced.
        shard.enqueue(presence(5, 1, 100, 110), &ctx);
        assert_eq!(shard.stats().anomalies.after_close, 1);
        // A straggler stamped beyond `close + lateness` retires the
        // fence and re-opens the visit implicitly — the event-time
        // deterministic rule both runtimes share.
        let far = 10 + lateness.as_seconds() + 1;
        shard.enqueue(presence(6, 1, far, far + 5), &ctx);
        shard.enqueue(presence(5, 1, far + 1, far + 2), &ctx);
        assert_eq!(shard.stats().anomalies.after_close, 1, "no longer fenced");
        assert_eq!(
            shard.stats().anomalies.implicit_opens,
            2,
            "visit 6 and the revived visit 5 both opened implicitly"
        );
    }

    #[test]
    fn implicit_open_adopts_orphan_observations() {
        let preds = preds();
        let ctx = ctx(&preds, 1, Duration::hours(1));
        let mut shard = Shard::new();
        shard.enqueue(presence(9, 1, 5, 10), &ctx);
        assert_eq!(shard.stats().anomalies.implicit_opens, 1);
        assert_eq!(shard.open_visits(), 1);
        shard.close_all(&ctx);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].moving_object, "implicit-9");
    }

    #[test]
    fn snapshot_restore_preserves_everything() {
        let preds = preds();
        let ctx = ctx(&preds, 1, Duration::hours(1));
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(2),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &ctx,
        );
        shard.enqueue(presence(2, 1, 0, 10), &ctx);
        let snap = shard.snapshot();
        let restored = Shard::restore(snap.clone(), &preds);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.watermark(), Some(Timestamp(0)));
    }

    #[test]
    fn live_state_exposes_prefixes_and_pending() {
        let preds = preds();
        let retaining = ShardCtx {
            retain_intervals: true,
            ..ctx(&preds, 1, Duration::hours(1))
        };
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(3),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &retaining,
        );
        shard.enqueue(presence(3, 1, 0, 10), &retaining);
        shard.enqueue(presence(3, 0, 10, 20), &retaining);
        let live = shard.live_state();
        assert_eq!(live.visits.len(), 1);
        assert_eq!(live.visits[0].visit, VisitKey(3));
        assert_eq!(live.visits[0].trajectory.trace().len(), 2);
        assert_eq!(live.pending.len(), 1, "cell-1 run closed by cell-0 stay");
        assert_eq!(live.unqueryable, 0);
        assert_eq!(live.watermark, Some(Timestamp(10)));
        // Without retention the visit is counted as unqueryable instead.
        let plain = ctx(&preds, 1, Duration::hours(1));
        let mut bare = Shard::new();
        bare.enqueue(presence(7, 1, 0, 10), &plain);
        let live = bare.live_state();
        assert!(live.visits.is_empty());
        assert_eq!(live.unqueryable, 1);
    }
}
