//! One shard: a hash partition of visits with bounded event batching.
//!
//! Shards are independent — a visit's whole lifetime lands on one shard,
//! so no cross-shard coordination is needed and shard count cannot change
//! results (the equivalence property tests pin this down for 1/2/8
//! shards). Events are buffered in a bounded inbox and applied in arrival
//! order when the inbox fills or the engine drains, amortizing per-event
//! overhead without reordering anything.

use std::collections::BTreeMap;

use sitm_core::{AnnotationSet, Duration, Episode, IntervalPredicate, Timestamp};

use crate::event::{StreamEvent, VisitKey};
use crate::visit::{Anomalies, VisitSnapshot, VisitState};

/// An episode the engine has finalized, tagged with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EmittedEpisode {
    /// The visit the episode belongs to.
    pub visit: VisitKey,
    /// The visit's moving object (`IDmo`).
    pub moving_object: String,
    /// Index into the engine's predicate table.
    pub predicate: usize,
    /// The episode, identical to what the batch extractor produces.
    pub episode: Episode,
}

impl EmittedEpisode {
    /// Global deterministic ordering: by episode time, then visit, then
    /// predicate, then range. Independent of shard count and drain timing.
    pub fn sort_key(&self) -> (Timestamp, Timestamp, u64, usize, usize) {
        (
            self.episode.time.start,
            self.episode.time.end,
            self.visit.0,
            self.predicate,
            self.episode.range.start,
        )
    }
}

/// Per-shard counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Events applied.
    pub events: u64,
    /// Presence intervals accepted into segmenters.
    pub presences: u64,
    /// Raw fixes applied.
    pub fixes: u64,
    /// Visits opened (explicitly or implicitly).
    pub visits_opened: u64,
    /// Visits closed.
    pub visits_closed: u64,
    /// Episodes finalized.
    pub episodes: u64,
    /// Inbox flushes performed.
    pub batches_flushed: u64,
    /// Rejected/adapted events.
    pub anomalies: Anomalies,
}

/// Serializable shard state (inbox must be empty — the engine flushes
/// before snapshotting).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// High-water mark of applied event times.
    pub watermark: Option<Timestamp>,
    /// Open visits, ordered by key.
    pub visits: Vec<(u64, VisitSnapshot)>,
    /// Visits that have closed, with their close instants (late-event
    /// fencing; pruned once the watermark passes close + lateness).
    pub closed: Vec<(u64, Timestamp)>,
    /// Episodes finalized but not yet drained by the consumer.
    pub pending: Vec<EmittedEpisode>,
    /// Counters.
    pub stats: ShardStats,
}

/// A hash partition of the visit space.
#[derive(Debug)]
pub struct Shard {
    inbox: Vec<StreamEvent>,
    visits: BTreeMap<u64, VisitState>,
    /// Closed visits and when they closed. Bounded: entries are pruned
    /// once the shard watermark passes `close + allowed_lateness`, so the
    /// fence covers realistic stragglers without growing with the total
    /// number of visits ever seen.
    closed: BTreeMap<u64, Timestamp>,
    pending: Vec<EmittedEpisode>,
    watermark: Option<Timestamp>,
    stats: ShardStats,
    scratch: Vec<(usize, Episode)>,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Self {
        Shard {
            inbox: Vec::new(),
            visits: BTreeMap::new(),
            closed: BTreeMap::new(),
            pending: Vec::new(),
            watermark: None,
            stats: ShardStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Buffers one event; applies the whole inbox when it reaches
    /// `batch_capacity`.
    pub fn enqueue(
        &mut self,
        event: StreamEvent,
        predicates: &[(IntervalPredicate, AnnotationSet)],
        drop_instantaneous: bool,
        batch_capacity: usize,
        allowed_lateness: Duration,
    ) {
        self.inbox.push(event);
        if self.inbox.len() >= batch_capacity.max(1) {
            self.flush(predicates, drop_instantaneous, allowed_lateness);
        }
    }

    /// Applies every buffered event in arrival order.
    pub fn flush(
        &mut self,
        predicates: &[(IntervalPredicate, AnnotationSet)],
        drop_instantaneous: bool,
        allowed_lateness: Duration,
    ) {
        if self.inbox.is_empty() {
            return;
        }
        self.stats.batches_flushed += 1;
        let events = std::mem::take(&mut self.inbox);
        for event in events {
            self.apply(event, predicates, drop_instantaneous);
        }
        // Retire fence entries no realistic straggler can still hit.
        if let Some(watermark) = self.watermark {
            self.closed
                .retain(|_, &mut closed_at| closed_at + allowed_lateness >= watermark);
        }
    }

    fn apply(
        &mut self,
        event: StreamEvent,
        predicates: &[(IntervalPredicate, AnnotationSet)],
        drop_instantaneous: bool,
    ) {
        self.stats.events += 1;
        self.watermark = Some(match self.watermark {
            Some(w) => w.max(event.time()),
            None => event.time(),
        });
        let key = event.visit().0;
        if self.closed.contains_key(&key) {
            self.stats.anomalies.after_close += 1;
            return;
        }
        match event {
            StreamEvent::VisitOpened {
                visit,
                moving_object,
                annotations,
                ..
            } => {
                if self.visits.contains_key(&visit.0) {
                    self.stats.anomalies.duplicate_opens += 1;
                    return;
                }
                self.stats.visits_opened += 1;
                self.visits.insert(
                    visit.0,
                    VisitState::new(
                        moving_object,
                        annotations,
                        predicates,
                        &mut self.stats.anomalies,
                    ),
                );
            }
            StreamEvent::Fix { visit, cell, at } => {
                self.stats.fixes += 1;
                self.ensure_visit(visit, predicates);
                let state = self.visits.get_mut(&visit.0).expect("ensured above");
                state.apply_fix(
                    cell,
                    at,
                    predicates,
                    drop_instantaneous,
                    &mut self.scratch,
                    &mut self.stats.anomalies,
                );
                self.collect(visit);
            }
            StreamEvent::Presence { visit, interval } => {
                self.stats.presences += 1;
                self.ensure_visit(visit, predicates);
                let state = self.visits.get_mut(&visit.0).expect("ensured above");
                state.apply_presence(
                    interval,
                    predicates,
                    drop_instantaneous,
                    &mut self.scratch,
                    &mut self.stats.anomalies,
                );
                self.collect(visit);
            }
            StreamEvent::VisitClosed { visit, at } => {
                let Some(mut state) = self.visits.remove(&visit.0) else {
                    self.stats.anomalies.after_close += 1;
                    return;
                };
                state.close(
                    predicates,
                    drop_instantaneous,
                    &mut self.scratch,
                    &mut self.stats.anomalies,
                );
                self.stats.visits_closed += 1;
                self.closed.insert(visit.0, at);
                let moving_object = state.moving_object.clone();
                for (predicate, episode) in self.scratch.drain(..) {
                    self.stats.episodes += 1;
                    self.pending.push(EmittedEpisode {
                        visit,
                        moving_object: moving_object.clone(),
                        predicate,
                        episode,
                    });
                }
            }
        }
    }

    fn ensure_visit(&mut self, visit: VisitKey, predicates: &[(IntervalPredicate, AnnotationSet)]) {
        if !self.visits.contains_key(&visit.0) {
            // An observation for a visit never opened: open it implicitly
            // with a synthetic identity rather than dropping data.
            self.stats.anomalies.implicit_opens += 1;
            self.stats.visits_opened += 1;
            self.visits.insert(
                visit.0,
                VisitState::new(
                    format!("implicit-{}", visit.0),
                    AnnotationSet::from_iter([sitm_core::Annotation::goal("streamed")]),
                    predicates,
                    &mut self.stats.anomalies,
                ),
            );
        }
    }

    fn collect(&mut self, visit: VisitKey) {
        if self.scratch.is_empty() {
            return;
        }
        let moving_object = self
            .visits
            .get(&visit.0)
            .map(|s| s.moving_object.clone())
            .unwrap_or_default();
        for (predicate, episode) in self.scratch.drain(..) {
            self.stats.episodes += 1;
            self.pending.push(EmittedEpisode {
                visit,
                moving_object: moving_object.clone(),
                predicate,
                episode,
            });
        }
    }

    /// Takes every finalized-but-undrained episode.
    pub fn take_pending(&mut self) -> Vec<EmittedEpisode> {
        std::mem::take(&mut self.pending)
    }

    /// Closes every open visit (end-of-stream).
    pub fn close_all(
        &mut self,
        predicates: &[(IntervalPredicate, AnnotationSet)],
        drop_instantaneous: bool,
    ) {
        let keys: Vec<u64> = self.visits.keys().copied().collect();
        for key in keys {
            let at = self.watermark.unwrap_or(Timestamp(0));
            self.apply(
                StreamEvent::VisitClosed {
                    visit: VisitKey(key),
                    at,
                },
                predicates,
                drop_instantaneous,
            );
        }
    }

    /// High-water mark of applied event times.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Open visits currently resident.
    pub fn open_visits(&self) -> usize {
        self.visits.len()
    }

    /// Events buffered but not yet applied.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Serializable state. The inbox must have been flushed.
    pub fn snapshot(&self) -> ShardSnapshot {
        debug_assert!(self.inbox.is_empty(), "flush before snapshot");
        ShardSnapshot {
            watermark: self.watermark,
            visits: self
                .visits
                .iter()
                .map(|(k, v)| (*k, v.snapshot()))
                .collect(),
            closed: self.closed.iter().map(|(k, t)| (*k, *t)).collect(),
            pending: self.pending.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds a shard from a snapshot taken against the same predicate
    /// table.
    pub fn restore(
        snapshot: ShardSnapshot,
        predicates: &[(IntervalPredicate, AnnotationSet)],
    ) -> Self {
        Shard {
            inbox: Vec::new(),
            visits: snapshot
                .visits
                .into_iter()
                .map(|(k, v)| (k, VisitState::restore(v, predicates)))
                .collect(),
            closed: snapshot.closed.into_iter().collect(),
            pending: snapshot.pending,
            watermark: snapshot.watermark,
            stats: snapshot.stats,
            scratch: Vec::new(),
        }
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, PresenceInterval, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn preds() -> Vec<(IntervalPredicate, AnnotationSet)> {
        vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))]
    }

    fn presence(v: u64, c: usize, start: i64, end: i64) -> StreamEvent {
        StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(start),
                Timestamp(end),
            ),
        }
    }

    #[test]
    fn inbox_batches_and_flushes_at_capacity() {
        let preds = preds();
        let mut shard = Shard::new();
        let open = StreamEvent::VisitOpened {
            visit: VisitKey(1),
            moving_object: "m".into(),
            annotations: label("visit"),
            at: Timestamp(0),
        };
        shard.enqueue(open, &preds, false, 3, Duration::hours(1));
        shard.enqueue(presence(1, 1, 0, 10), &preds, false, 3, Duration::hours(1));
        assert_eq!(shard.inbox_len(), 2, "below capacity: buffered");
        assert_eq!(shard.open_visits(), 0);
        shard.enqueue(presence(1, 0, 10, 20), &preds, false, 3, Duration::hours(1));
        assert_eq!(shard.inbox_len(), 0, "capacity reached: flushed");
        assert_eq!(shard.open_visits(), 1);
        assert_eq!(shard.stats().batches_flushed, 1);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1, "cell-1 run closed by cell-0 stay");
        assert_eq!(pending[0].moving_object, "m");
        assert_eq!(pending[0].episode.range, 0..1);
    }

    #[test]
    fn close_all_flushes_open_runs_and_fences_late_events() {
        let preds = preds();
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(4),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &preds,
            false,
            1,
            Duration::hours(1),
        );
        shard.enqueue(presence(4, 1, 0, 10), &preds, false, 1, Duration::hours(1));
        shard.close_all(&preds, false);
        assert_eq!(shard.open_visits(), 0);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1, "open run closed at end-of-stream");
        // A late event for the closed visit is fenced.
        shard.enqueue(presence(4, 1, 20, 30), &preds, false, 1, Duration::hours(1));
        assert_eq!(shard.stats().anomalies.after_close, 1);
        assert!(shard.take_pending().is_empty());
    }

    #[test]
    fn fence_entries_retire_past_allowed_lateness() {
        let preds = preds();
        let lateness = Duration::hours(1);
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(5),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &preds,
            false,
            1,
            lateness,
        );
        shard.enqueue(
            StreamEvent::VisitClosed {
                visit: VisitKey(5),
                at: Timestamp(10),
            },
            &preds,
            false,
            1,
            lateness,
        );
        // Within the lateness horizon: still fenced.
        shard.enqueue(presence(5, 1, 100, 110), &preds, false, 1, lateness);
        assert_eq!(shard.stats().anomalies.after_close, 1);
        // A different visit's event pushes the watermark past the horizon,
        // retiring the fence entry; a straggler then re-opens implicitly
        // instead of being fenced (documented trade-off of bounded state).
        let far = 10 + lateness.as_seconds() + 1;
        shard.enqueue(presence(6, 1, far, far + 5), &preds, false, 1, lateness);
        shard.enqueue(presence(5, 1, far + 1, far + 2), &preds, false, 1, lateness);
        assert_eq!(shard.stats().anomalies.after_close, 1, "no longer fenced");
        assert_eq!(
            shard.stats().anomalies.implicit_opens,
            2,
            "visit 6 and the revived visit 5 both opened implicitly"
        );
    }

    #[test]
    fn implicit_open_adopts_orphan_observations() {
        let preds = preds();
        let mut shard = Shard::new();
        shard.enqueue(presence(9, 1, 5, 10), &preds, false, 1, Duration::hours(1));
        assert_eq!(shard.stats().anomalies.implicit_opens, 1);
        assert_eq!(shard.open_visits(), 1);
        shard.close_all(&preds, false);
        let pending = shard.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].moving_object, "implicit-9");
    }

    #[test]
    fn snapshot_restore_preserves_everything() {
        let preds = preds();
        let mut shard = Shard::new();
        shard.enqueue(
            StreamEvent::VisitOpened {
                visit: VisitKey(2),
                moving_object: "m".into(),
                annotations: label("visit"),
                at: Timestamp(0),
            },
            &preds,
            false,
            1,
            Duration::hours(1),
        );
        shard.enqueue(presence(2, 1, 0, 10), &preds, false, 1, Duration::hours(1));
        let snap = shard.snapshot();
        let restored = Shard::restore(snap.clone(), &preds);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.watermark(), Some(Timestamp(0)));
    }
}
