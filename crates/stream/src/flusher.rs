//! The live → warehouse spill pipeline.
//!
//! With [`crate::EngineConfig::with_warehouse`] on, each engine retains
//! every closed visit's completed trajectory until `take_finished`
//! collects it — which bounds nothing by itself. A [`Flusher`] closes
//! the loop: it periodically drains the finished backlog out of the
//! engine and spills it into a [`SegmentedDb`] as immutable sorted
//! segments, so **engine memory stays bounded by the open-visit
//! population plus one flush batch**, and the warehouse tier (not RAM)
//! owns history.
//!
//! The full data path this module completes:
//!
//! ```text
//! ingest → live state (open visits, queryable via LiveSnapshot)
//!        → close (late events fenced per allowed_lateness)
//!        → finished backlog (take_finished, exactly-once vs checkpoints)
//!        → Flusher::poll → SegmentedDb::flush (immutable sorted segment,
//!          zone maps, manifest commit, fsync)
//!        → size-tiered compaction (small runs merge, manifest rewrites)
//! ```
//!
//! Consistency: `take_finished` is a barrier on the engine (every
//! ingested event applied first) and `SegmentedDb::flush` is durable on
//! return, so after a successful [`Flusher::poll`] every spilled
//! trajectory is queryable from the warehouse and gone from the engine.
//! The hand-off is exactly-once *relative to checkpoints*: a crash
//! after take but before flush loses only what a restore regenerates —
//! the backlog rides checkpoint payloads until taken — and a crash
//! after flush but before the next checkpoint re-emits nothing because
//! the segment tier is idempotent per manifest commit. The one
//! double-spill window (flush durable, checkpoint older than the take)
//! re-flushes the same trajectories into a *new* segment; dedup is the
//! consumer's choice, exactly as re-drained episodes are after a
//! restore to an older checkpoint.
//!
//! Batching: tiny segments make zone maps useless and compaction busy;
//! [`Flusher::with_min_batch`] holds spills until enough finished
//! visits accumulate (carried in the flusher between polls), and
//! [`Flusher::force`] spills the remainder at end-of-stream.

use std::sync::Arc;
use std::time::Instant;

use sitm_core::SemanticTrajectory;
use sitm_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use sitm_query::SegmentedDb;
use sitm_store::warehouse::WarehouseError;

use crate::engine::ShardedEngine;
use crate::parallel::ParallelEngine;

/// An engine that can hand over its finished-visit backlog — the drain
/// side of the live → warehouse pipeline, implemented by both runtimes
/// so one [`Flusher`] serves either.
pub trait FinishedSource {
    /// Flushes, then takes every completed-but-unflushed trajectory in
    /// deterministic global order.
    fn take_finished(&mut self) -> Vec<SemanticTrajectory>;
}

impl FinishedSource for ShardedEngine {
    fn take_finished(&mut self) -> Vec<SemanticTrajectory> {
        ShardedEngine::take_finished(self)
    }
}

impl FinishedSource for ParallelEngine {
    fn take_finished(&mut self) -> Vec<SemanticTrajectory> {
        ParallelEngine::take_finished(self)
    }
}

/// Drains finished visits from a streaming engine into the segment
/// tier, bounding engine memory (see the module docs for the data path
/// and its consistency guarantees).
pub struct Flusher {
    db: SegmentedDb,
    /// Spill only once this many finished visits are in hand.
    min_batch: usize,
    /// Taken from the engine but below the batch threshold.
    carry: Vec<SemanticTrajectory>,
    /// `flush.*` instruments: spills, trajectories spilled, spill
    /// duration (ns), and the carry length as a gauge (the spill
    /// tier's lag, served by the Health surface).
    spills: Arc<Counter>,
    trajectories: Arc<Counter>,
    duration_ns: Arc<Histogram>,
    backlog_gauge: Arc<Gauge>,
}

impl Flusher {
    /// Wraps a warehouse; spills on every non-empty poll by default.
    pub fn new(db: SegmentedDb) -> Flusher {
        Flusher {
            db,
            min_batch: 1,
            carry: Vec::new(),
            spills: MetricsRegistry::global().counter("flush.spills"),
            trajectories: MetricsRegistry::global().counter("flush.trajectories"),
            duration_ns: MetricsRegistry::global().histogram("flush.duration_ns"),
            backlog_gauge: MetricsRegistry::global().gauge("flush.backlog_trajectories"),
        }
    }

    /// Points the `flush.*` instruments at `registry` (and the wrapped
    /// warehouse's `store.*`/`query.*` instruments along with them).
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Flusher {
        self.spills = registry.counter("flush.spills");
        self.trajectories = registry.counter("flush.trajectories");
        self.duration_ns = registry.histogram("flush.duration_ns");
        self.backlog_gauge = registry.gauge("flush.backlog_trajectories");
        self.backlog_gauge.set(self.carry.len() as i64);
        self.db = self.db.with_metrics(registry);
        self
    }

    /// Holds spills until at least `n` finished visits accumulate
    /// (clamped to ≥ 1). Larger batches mean fewer, bigger segments and
    /// sharper zone maps at the cost of a longer engine-side backlog.
    #[must_use]
    pub fn with_min_batch(mut self, n: usize) -> Flusher {
        self.min_batch = n.max(1);
        self
    }

    /// Drains the engine's finished backlog and spills it (plus any
    /// carry from earlier polls) into the warehouse once the batch
    /// threshold is met. Returns the number of trajectories made
    /// durable by this call (0 when the batch is still accumulating).
    pub fn poll(&mut self, engine: &mut impl FinishedSource) -> Result<usize, WarehouseError> {
        self.carry.extend(engine.take_finished());
        if self.carry.len() < self.min_batch {
            self.backlog_gauge.set(self.carry.len() as i64);
            return Ok(0);
        }
        self.spill()
    }

    /// Drains the engine, then spills everything in hand regardless of
    /// the batch threshold (end-of-stream / shutdown).
    pub fn force(&mut self, engine: &mut impl FinishedSource) -> Result<usize, WarehouseError> {
        self.carry.extend(engine.take_finished());
        self.spill()
    }

    fn spill(&mut self) -> Result<usize, WarehouseError> {
        if self.carry.is_empty() {
            self.backlog_gauge.set(0);
            return Ok(0);
        }
        let batch = std::mem::take(&mut self.carry);
        self.backlog_gauge.set(0);
        let n = batch.len();
        let start = Instant::now();
        self.db.flush(batch)?;
        self.duration_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.spills.inc();
        self.trajectories.add(n as u64);
        Ok(n)
    }

    /// Finished visits taken from the engine but not yet spilled.
    pub fn backlog(&self) -> usize {
        self.carry.len()
    }

    /// The warehouse being filled.
    pub fn db(&self) -> &SegmentedDb {
        &self.db
    }

    /// Hands the warehouse back (e.g. to query it after the stream
    /// ends). Anything still in the carry is spilled first when
    /// non-empty; call [`Flusher::force`] beforehand to also drain the
    /// engine.
    pub fn into_db(mut self) -> Result<SegmentedDb, WarehouseError> {
        self.spill()?;
        Ok(self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::event::{sort_feed, StreamEvent, VisitKey};
    use sitm_core::{
        Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_query::Predicate;
    use sitm_space::CellRef;
    use sitm_store::warehouse::WarehouseConfig;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("sitm-flusher-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn config() -> EngineConfig {
        EngineConfig::new(vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))])
            .with_shards(2)
            .with_batch_capacity(4)
            .with_warehouse()
    }

    fn feed(visits: u64) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for v in 0..visits {
            let base = v as i64 * 10;
            events.push(StreamEvent::VisitOpened {
                visit: VisitKey(v),
                moving_object: format!("mo-{v}"),
                annotations: label("visit"),
                at: Timestamp(base),
            });
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell((v % 3) as usize),
                    Timestamp(base),
                    Timestamp(base + 50),
                ),
            });
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(base + 60),
            });
        }
        sort_feed(&mut events);
        events
    }

    fn open_db(tmp: &TempDir) -> SegmentedDb {
        SegmentedDb::open(&tmp.0, WarehouseConfig::default())
            .expect("open warehouse")
            .0
    }

    #[test]
    fn poll_spills_finished_visits_and_bounds_the_engine() {
        let tmp = TempDir::new("poll");
        let mut engine = ShardedEngine::new(config()).unwrap();
        let mut flusher = Flusher::new(open_db(&tmp));
        let events = feed(9);
        let third = events.len() / 3;
        let mut spilled = 0;
        for chunk in events.chunks(third.max(1)) {
            engine.ingest_all(chunk.to_vec());
            spilled += flusher.poll(&mut engine).unwrap();
        }
        engine.finish();
        spilled += flusher.force(&mut engine).unwrap();
        assert_eq!(spilled, 9, "every closed visit reached the warehouse");
        assert_eq!(flusher.backlog(), 0);
        let db = flusher.into_db().unwrap();
        assert_eq!(db.len(), 9);
        // The warehouse answers predicates over the spilled history.
        assert_eq!(
            db.count_matching(&Predicate::VisitedCell(cell(0))),
            3,
            "visits 0, 3, 6 stayed in cell 0"
        );
        // And another take from the engine is empty (exactly-once).
        assert!(engine.take_finished().is_empty());
    }

    #[test]
    fn min_batch_holds_small_spills() {
        let tmp = TempDir::new("batch");
        let mut engine = ShardedEngine::new(config()).unwrap();
        let mut flusher = Flusher::new(open_db(&tmp)).with_min_batch(100);
        engine.ingest_all(feed(4));
        engine.flush();
        assert_eq!(flusher.poll(&mut engine).unwrap(), 0, "below threshold");
        assert_eq!(flusher.backlog(), 4, "carried, not lost");
        assert_eq!(flusher.force(&mut engine).unwrap(), 4);
        assert_eq!(flusher.db().len(), 4);
    }

    #[test]
    fn one_flusher_serves_both_runtimes_identically() {
        let events = feed(8);
        let tmp_seq = TempDir::new("seq");
        let tmp_par = TempDir::new("par");

        let mut seq = ShardedEngine::new(config()).unwrap();
        seq.ingest_all(events.iter().cloned());
        seq.finish();
        let mut f = Flusher::new(open_db(&tmp_seq));
        f.force(&mut seq).unwrap();
        let seq_db = f.into_db().unwrap();

        let mut par = ParallelEngine::new(config()).unwrap();
        par.ingest_all(events.iter().cloned());
        par.finish();
        let mut f = Flusher::new(open_db(&tmp_par));
        f.force(&mut par).unwrap();
        let par_db = f.into_db().unwrap();

        let seq_all: Vec<SemanticTrajectory> = seq_db.iter().cloned().collect();
        let par_all: Vec<SemanticTrajectory> = par_db.iter().cloned().collect();
        assert_eq!(seq_all, par_all, "identical warehouses from either runtime");
    }
}
