//! Checkpoint encoding and crash recovery.
//!
//! Shard state serializes into the opaque payload of a
//! [`sitm_store::CheckpointFrame`] using the store's varint/annotation
//! codecs, and rides the CRC-framed [`LogStore`] for durability: a torn
//! write mid-checkpoint is detected by the store's scanner (truncated
//! tail) or by [`sitm_store::latest_complete_checkpoint`] (missing shard
//! frames), and recovery falls back to the previous complete snapshot.
//!
//! Predicates are **not** serialized — they are code. Restore re-supplies
//! the same [`EngineConfig`]; the payload records the predicate count so
//! a mismatched configuration is rejected instead of silently mislabeling
//! runs.

use std::collections::VecDeque;

use sitm_core::{OpenRun, Timestamp};
use sitm_graph::LayerIdx;
use sitm_store::codec::{
    decode_annotations, decode_cell, decode_episode, decode_presence, encode_annotations,
    encode_cell, encode_episode, encode_presence, CodecError,
};
use sitm_store::{
    complete_checkpoint_groups, latest_complete_checkpoint, varint, CheckpointFrame,
    CompactionPolicy, LogStore, RecoveryReport, StoreError,
};

use crate::engine::{EngineConfig, EngineError, ShardedEngine};
use crate::event::VisitKey;
use crate::parallel::ParallelEngine;
use crate::segmenter::SegmenterSnapshot;
use crate::shard::{EmittedEpisode, ShardSnapshot, ShardStats};
use crate::visit::{Anomalies, OpenFix, VisitSnapshot};

/// Payload format version. Version 2 added the retained live-query
/// intervals to each visit's state; version 3 added the
/// finished-but-unflushed trajectory backlog (the warehouse drain's
/// exactly-once buffer). Older payloads are no longer produced, and
/// rejecting them keeps the decoder honest.
const VERSION: u8 = 3;

/// Checkpoint payload failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying codec failure.
    Codec(CodecError),
    /// Unknown payload version.
    BadVersion(u8),
    /// Payload ended early or a flag byte was invalid.
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Codec(e) => write!(f, "codec: {e}"),
            CheckpointError::BadVersion(v) => write!(f, "unknown checkpoint version {v}"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

impl From<varint::VarintError> for CheckpointError {
    fn from(e: varint::VarintError) -> Self {
        CheckpointError::Codec(CodecError::Varint(e))
    }
}

// --- primitive helpers -----------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    varint::encode_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> Result<String, CheckpointError> {
    let len = varint::decode_u64(buf)? as usize;
    if len > buf.len() {
        return Err(CheckpointError::Malformed("string overruns payload"));
    }
    let (head, tail) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| CheckpointError::Malformed("string is not UTF-8"))?
        .to_string();
    *buf = tail;
    Ok(s)
}

fn put_flag(buf: &mut Vec<u8>, present: bool) {
    buf.push(u8::from(present));
}

fn take_flag(buf: &mut &[u8]) -> Result<bool, CheckpointError> {
    let Some((&b, rest)) = buf.split_first() else {
        return Err(CheckpointError::Malformed("missing flag byte"));
    };
    *buf = rest;
    match b {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Malformed("flag byte out of range")),
    }
}

fn put_opt_i64(buf: &mut Vec<u8>, v: Option<i64>) {
    put_flag(buf, v.is_some());
    if let Some(v) = v {
        varint::encode_i64(buf, v);
    }
}

fn take_opt_i64(buf: &mut &[u8]) -> Result<Option<i64>, CheckpointError> {
    Ok(if take_flag(buf)? {
        Some(varint::decode_i64(buf)?)
    } else {
        None
    })
}

// --- shard payload ---------------------------------------------------------

/// Serializes one shard snapshot (with the predicate-table arity, for
/// restore-time validation).
pub fn encode_shard(snapshot: &ShardSnapshot, predicate_count: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.push(VERSION);
    varint::encode_u64(&mut buf, predicate_count as u64);
    put_opt_i64(&mut buf, snapshot.watermark.map(|t| t.0));

    varint::encode_u64(&mut buf, snapshot.visits.len() as u64);
    for (key, visit) in &snapshot.visits {
        varint::encode_u64(&mut buf, *key);
        encode_visit_state(&mut buf, visit);
    }

    varint::encode_u64(&mut buf, snapshot.closed.len() as u64);
    for (key, closed_at) in &snapshot.closed {
        varint::encode_u64(&mut buf, *key);
        varint::encode_i64(&mut buf, closed_at.0);
    }

    varint::encode_u64(&mut buf, snapshot.pending.len() as u64);
    for e in &snapshot.pending {
        varint::encode_u64(&mut buf, e.visit.0);
        put_str(&mut buf, &e.moving_object);
        varint::encode_u64(&mut buf, e.predicate as u64);
        encode_episode(&mut buf, &e.episode);
    }

    varint::encode_u64(&mut buf, snapshot.finished.len() as u64);
    for (key, trajectory) in &snapshot.finished {
        varint::encode_u64(&mut buf, *key);
        sitm_store::codec::encode_trajectory(&mut buf, trajectory);
    }

    encode_stats(&mut buf, &snapshot.stats);
    buf
}

/// Deserializes one shard snapshot; returns the predicate count the
/// checkpoint was taken under.
pub fn decode_shard(payload: &[u8]) -> Result<(ShardSnapshot, usize), CheckpointError> {
    let mut buf = payload;
    let Some((&version, rest)) = buf.split_first() else {
        return Err(CheckpointError::Malformed("empty payload"));
    };
    buf = rest;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let predicate_count = varint::decode_u64(&mut buf)? as usize;
    let watermark = take_opt_i64(&mut buf)?.map(Timestamp);

    let visit_count = varint::decode_u64(&mut buf)? as usize;
    if visit_count > payload.len() {
        return Err(CheckpointError::Malformed("visit count overruns payload"));
    }
    let mut visits = Vec::with_capacity(visit_count);
    for _ in 0..visit_count {
        let key = varint::decode_u64(&mut buf)?;
        visits.push((key, decode_visit_state(&mut buf, predicate_count)?));
    }

    let closed_count = varint::decode_u64(&mut buf)? as usize;
    if closed_count > payload.len() {
        return Err(CheckpointError::Malformed("closed count overruns payload"));
    }
    let mut closed = Vec::with_capacity(closed_count);
    for _ in 0..closed_count {
        let key = varint::decode_u64(&mut buf)?;
        let closed_at = Timestamp(varint::decode_i64(&mut buf)?);
        closed.push((key, closed_at));
    }

    let pending_count = varint::decode_u64(&mut buf)? as usize;
    if pending_count > payload.len() {
        return Err(CheckpointError::Malformed("pending count overruns payload"));
    }
    let mut pending = Vec::with_capacity(pending_count);
    for _ in 0..pending_count {
        let visit = VisitKey(varint::decode_u64(&mut buf)?);
        let moving_object = take_str(&mut buf)?;
        let predicate = varint::decode_u64(&mut buf)? as usize;
        let episode = decode_episode(&mut buf)?;
        pending.push(EmittedEpisode {
            visit,
            moving_object,
            predicate,
            episode,
        });
    }

    let finished_count = varint::decode_u64(&mut buf)? as usize;
    if finished_count > payload.len() {
        return Err(CheckpointError::Malformed(
            "finished count overruns payload",
        ));
    }
    let mut finished = Vec::with_capacity(finished_count);
    for _ in 0..finished_count {
        let key = varint::decode_u64(&mut buf)?;
        let trajectory = sitm_store::codec::decode_trajectory(&mut buf)?;
        finished.push((key, trajectory));
    }

    let stats = decode_stats(&mut buf)?;
    if !buf.is_empty() {
        return Err(CheckpointError::Malformed("trailing bytes"));
    }
    Ok((
        ShardSnapshot {
            watermark,
            visits,
            closed,
            pending,
            finished,
            stats,
        },
        predicate_count,
    ))
}

fn encode_visit_state(buf: &mut Vec<u8>, v: &VisitSnapshot) {
    put_str(buf, &v.moving_object);
    encode_annotations(buf, &v.annotations);
    put_opt_i64(buf, v.layer.map(|l| l.index() as i64));
    put_opt_i64(buf, v.last_start.map(|t| t.0));
    put_flag(buf, v.open_fix.is_some());
    if let Some(open) = &v.open_fix {
        encode_cell(buf, open.cell);
        varint::encode_i64(buf, open.start.0);
        varint::encode_i64(buf, open.last_at.0);
    }
    varint::encode_u64(buf, v.segmenter.index as u64);
    for (suppressed, run) in v.segmenter.suppressed.iter().zip(&v.segmenter.open_runs) {
        put_flag(buf, *suppressed);
        put_flag(buf, run.is_some());
        if let Some(run) = run {
            varint::encode_u64(buf, run.start as u64);
            varint::encode_i64(buf, run.start_time.0);
            varint::encode_i64(buf, run.max_end.0);
        }
    }
    varint::encode_u64(buf, v.intervals.len() as u64);
    for interval in &v.intervals {
        encode_presence(buf, interval);
    }
}

fn decode_visit_state(
    buf: &mut &[u8],
    predicate_count: usize,
) -> Result<VisitSnapshot, CheckpointError> {
    let moving_object = take_str(buf)?;
    let annotations = decode_annotations(buf)?;
    let layer = take_opt_i64(buf)?.map(|i| LayerIdx::from_index(i as usize));
    let last_start = take_opt_i64(buf)?.map(Timestamp);
    let open_fix = if take_flag(buf)? {
        let cell = decode_cell(buf)?;
        let start = Timestamp(varint::decode_i64(buf)?);
        let last_at = Timestamp(varint::decode_i64(buf)?);
        Some(OpenFix {
            cell,
            start,
            last_at,
        })
    } else {
        None
    };
    let index = varint::decode_u64(buf)? as usize;
    let mut suppressed = Vec::with_capacity(predicate_count);
    let mut open_runs = Vec::with_capacity(predicate_count);
    for _ in 0..predicate_count {
        suppressed.push(take_flag(buf)?);
        open_runs.push(if take_flag(buf)? {
            Some(OpenRun {
                start: varint::decode_u64(buf)? as usize,
                start_time: Timestamp(varint::decode_i64(buf)?),
                max_end: Timestamp(varint::decode_i64(buf)?),
            })
        } else {
            None
        });
    }
    let interval_count = varint::decode_u64(buf)? as usize;
    if interval_count > buf.len() {
        return Err(CheckpointError::Malformed(
            "interval count overruns payload",
        ));
    }
    let mut intervals = Vec::with_capacity(interval_count);
    for _ in 0..interval_count {
        intervals.push(decode_presence(buf)?);
    }
    Ok(VisitSnapshot {
        moving_object,
        annotations,
        layer,
        last_start,
        open_fix,
        segmenter: SegmenterSnapshot {
            index,
            open_runs,
            suppressed,
        },
        intervals,
    })
}

fn encode_stats(buf: &mut Vec<u8>, s: &ShardStats) {
    for v in [
        s.events,
        s.presences,
        s.fixes,
        s.visits_opened,
        s.visits_closed,
        s.episodes,
        s.batches_flushed,
        s.anomalies.out_of_order,
        s.anomalies.mixed_layer,
        s.anomalies.instantaneous_dropped,
        s.anomalies.implicit_opens,
        s.anomalies.after_close,
        s.anomalies.not_proper,
        s.anomalies.duplicate_opens,
    ] {
        varint::encode_u64(buf, v);
    }
}

fn decode_stats(buf: &mut &[u8]) -> Result<ShardStats, CheckpointError> {
    let mut take = || varint::decode_u64(buf).map_err(CheckpointError::from);
    Ok(ShardStats {
        events: take()?,
        presences: take()?,
        fixes: take()?,
        visits_opened: take()?,
        visits_closed: take()?,
        episodes: take()?,
        batches_flushed: take()?,
        anomalies: Anomalies {
            out_of_order: take()?,
            mixed_layer: take()?,
            instantaneous_dropped: take()?,
            implicit_opens: take()?,
            after_close: take()?,
            not_proper: take()?,
            duplicate_opens: take()?,
        },
    })
}

/// Decodes and validates one complete checkpoint against `config` —
/// shard count, predicate arity, retention reconciliation — and
/// restores the shards. The single restore body behind both
/// [`ShardedEngine::restore`] and [`ParallelEngine::restore`], so a
/// validation added for one engine cannot be forgotten for the other.
/// Returns the shards in shard order plus the checkpoint's sequence.
pub(crate) fn decode_checkpoint(
    config: &EngineConfig,
    frames: &[&CheckpointFrame],
) -> Result<(Vec<crate::shard::Shard>, u64), EngineError> {
    if frames.len() != config.shards {
        return Err(EngineError::ShardCountMismatch {
            configured: config.shards,
            recorded: frames.len(),
        });
    }
    let mut shards = Vec::with_capacity(frames.len());
    let mut sequence = 0;
    for frame in frames {
        sequence = frame.sequence;
        let (mut snapshot, predicate_count) = decode_shard(&frame.payload)?;
        if predicate_count != config.predicates.len() {
            return Err(EngineError::PredicateCountMismatch {
                configured: config.predicates.len(),
                recorded: predicate_count,
            });
        }
        crate::engine::reconcile_retention(&mut snapshot, config);
        shards.push(crate::shard::Shard::restore(snapshot, &config.predicates));
    }
    Ok((shards, sequence))
}

/// Appends one checkpoint's frames and fsyncs — the non-compacting
/// commit path shared by both engines' `checkpoint` and the
/// [`Checkpointer`]'s deferred-compaction commits.
pub(crate) fn append_and_sync(
    log: &mut LogStore<CheckpointFrame>,
    frames: &[CheckpointFrame],
) -> Result<(), StoreError> {
    for frame in frames {
        log.append(frame)?;
    }
    log.sync()
}

// --- compaction-aware checkpointing ----------------------------------------

/// A checkpoint log that stays bounded.
///
/// Wraps a [`LogStore`] of [`CheckpointFrame`]s with a
/// [`CompactionPolicy`]: every [`Checkpointer::commit`] either appends
/// the new checkpoint's frames, or — when the policy says it is time —
/// atomically rewrites the log ([`LogStore::compact`]) to hold only the
/// newest `policy.keep` complete checkpoints. With the default policy
/// (`keep: 2, every: 1`) the log never exceeds two snapshots, and a
/// crash at *any* byte of a commit — including mid-rewrite — leaves a
/// complete older checkpoint to recover from (torture-tested in
/// `tests/compaction.rs`).
///
/// Retention mismatches are reconciled at restore: a checkpoint taken
/// *without* interval retention restores into a retaining config with
/// empty prefixes (live queries see only post-restore intervals for
/// those visits), and a checkpoint taken *with* retention restoring
/// into a non-retaining config drops the stored prefixes rather than
/// serving them frozen — those visits read as unqueryable, never stale.
pub struct Checkpointer {
    log: LogStore<CheckpointFrame>,
    policy: CompactionPolicy,
    /// The newest `policy.keep` complete checkpoints, oldest first —
    /// exactly what a compaction rewrites the log to.
    history: VecDeque<Vec<CheckpointFrame>>,
    commits_since_compact: u64,
}

impl Checkpointer {
    /// Opens (or creates) the checkpoint log at `path`, seeding the
    /// compaction history from the complete checkpoints already durable
    /// in it. Returns the checkpointer, the recovered frames (feed them
    /// to [`latest_complete_checkpoint`] / `restore`), and the store's
    /// recovery report.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        policy: CompactionPolicy,
    ) -> Result<(Checkpointer, Vec<CheckpointFrame>, RecoveryReport), StoreError> {
        let (log, frames, report) = LogStore::<CheckpointFrame>::open(path)?;
        let history: VecDeque<Vec<CheckpointFrame>> =
            complete_checkpoint_groups(&frames, policy.keep).into();
        Ok((
            Checkpointer {
                log,
                policy,
                history,
                commits_since_compact: 0,
            },
            frames,
            report,
        ))
    }

    /// Commits one complete checkpoint (the frames share one sequence).
    /// Appends and fsyncs, or compacts when the policy's interval is
    /// reached; either way the checkpoint is durable on return.
    pub fn commit(&mut self, frames: Vec<CheckpointFrame>) -> Result<(), StoreError> {
        self.history.push_back(frames);
        while self.history.len() > self.policy.keep.max(1) {
            self.history.pop_front();
        }
        self.commits_since_compact += 1;
        if self.commits_since_compact >= self.policy.every.max(1) {
            let retained: Vec<CheckpointFrame> = self.history.iter().flatten().cloned().collect();
            self.log.compact(&retained)?;
            self.commits_since_compact = 0;
        } else {
            let newest = self.history.back().expect("just pushed");
            append_and_sync(&mut self.log, newest)?;
        }
        Ok(())
    }

    /// The policy in force.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// The underlying log (e.g. for size accounting).
    pub fn log(&self) -> &LogStore<CheckpointFrame> {
        &self.log
    }
}

// --- recovery --------------------------------------------------------------

/// The resume surface both engines share, so every `resume_*` entry
/// point runs the same recovery body.
trait ResumableEngine: Sized {
    fn fresh(config: EngineConfig) -> Result<Self, EngineError>;
    fn restore_from(config: EngineConfig, frames: &[&CheckpointFrame])
        -> Result<Self, EngineError>;
    fn advance(&mut self, sequence: u64);
}

impl ResumableEngine for ShardedEngine {
    fn fresh(config: EngineConfig) -> Result<Self, EngineError> {
        ShardedEngine::new(config)
    }
    fn restore_from(
        config: EngineConfig,
        frames: &[&CheckpointFrame],
    ) -> Result<Self, EngineError> {
        ShardedEngine::restore(config, frames)
    }
    fn advance(&mut self, sequence: u64) {
        self.advance_sequence_to(sequence);
    }
}

impl ResumableEngine for ParallelEngine {
    fn fresh(config: EngineConfig) -> Result<Self, EngineError> {
        ParallelEngine::new(config)
    }
    fn restore_from(
        config: EngineConfig,
        frames: &[&CheckpointFrame],
    ) -> Result<Self, EngineError> {
        ParallelEngine::restore(config, frames)
    }
    fn advance(&mut self, sequence: u64) {
        self.advance_sequence_to(sequence);
    }
}

/// The common recovery body: rebuild from the newest complete
/// checkpoint (or fresh when none exists), then raise the sequence past
/// every durable frame — torn checkpoints included, whose numbers must
/// never be reused or the next checkpoint would collide with the stale
/// frames and read as incomplete at the following recovery.
fn resume_engine<E: ResumableEngine>(
    config: EngineConfig,
    frames: &[CheckpointFrame],
) -> Result<E, EngineError> {
    let mut engine = match latest_complete_checkpoint(frames) {
        Some(chosen) => E::restore_from(config, &chosen)?,
        None => E::fresh(config)?,
    };
    engine.advance(frames.iter().map(|f| f.sequence).max().unwrap_or(0));
    Ok(engine)
}

/// Opens (or creates) the checkpoint log at `path` and rebuilds the
/// engine from the newest complete checkpoint, or fresh from `config`
/// when none exists. Returns the engine, the log (positioned for further
/// checkpoints), and the store's recovery report.
pub fn resume_from_log(
    config: EngineConfig,
    path: impl AsRef<std::path::Path>,
) -> Result<(ShardedEngine, LogStore<CheckpointFrame>, RecoveryReport), EngineError> {
    let (log, frames, report) = LogStore::<CheckpointFrame>::open(path)?;
    Ok((resume_engine(config, &frames)?, log, report))
}

/// [`resume_from_log`] for the thread-per-shard [`ParallelEngine`].
pub fn resume_parallel_from_log(
    config: EngineConfig,
    path: impl AsRef<std::path::Path>,
) -> Result<(ParallelEngine, LogStore<CheckpointFrame>, RecoveryReport), EngineError> {
    let (log, frames, report) = LogStore::<CheckpointFrame>::open(path)?;
    Ok((resume_engine(config, &frames)?, log, report))
}

/// [`resume_from_log`], but through a compacting [`Checkpointer`]
/// instead of a raw log.
pub fn resume_compacting(
    config: EngineConfig,
    path: impl AsRef<std::path::Path>,
    policy: CompactionPolicy,
) -> Result<(ShardedEngine, Checkpointer, RecoveryReport), EngineError> {
    let (checkpointer, frames, report) = Checkpointer::open(path, policy)?;
    Ok((resume_engine(config, &frames)?, checkpointer, report))
}

/// [`resume_compacting`] for the [`ParallelEngine`].
pub fn resume_parallel_compacting(
    config: EngineConfig,
    path: impl AsRef<std::path::Path>,
    policy: CompactionPolicy,
) -> Result<(ParallelEngine, Checkpointer, RecoveryReport), EngineError> {
    let (checkpointer, frames, report) = Checkpointer::open(path, policy)?;
    Ok((resume_engine(config, &frames)?, checkpointer, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::event::StreamEvent;
    use sitm_core::{
        Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, TransitionTaken,
    };
    use sitm_graph::NodeId;
    use sitm_space::CellRef;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> TempPath {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            TempPath(std::env::temp_dir().join(format!(
                "sitm-stream-ckpt-{tag}-{}-{n}.log",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn config() -> EngineConfig {
        EngineConfig::new(vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))])
            .with_shards(2)
            .with_batch_capacity(1)
    }

    fn presence(v: u64, c: usize, start: i64) -> StreamEvent {
        StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(start),
                Timestamp(start + 10),
            ),
        }
    }

    #[test]
    fn payload_round_trips() {
        let mut engine = ShardedEngine::new(config()).unwrap();
        engine.ingest(StreamEvent::VisitOpened {
            visit: VisitKey(1),
            moving_object: "mo".into(),
            annotations: label("visit"),
            at: Timestamp(0),
        });
        engine.ingest(presence(1, 1, 0));
        engine.ingest(presence(1, 0, 20));
        engine.flush();
        let tmp = TempPath::new("roundtrip");
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&tmp.0).unwrap();
        let seq = engine.checkpoint(&mut log).unwrap();
        assert_eq!(seq, 1);
        drop(log);

        let (restored, _log, report) = resume_from_log(config(), &tmp.0).unwrap();
        assert!(report.is_clean());
        let stats = restored.stats();
        assert_eq!(stats.presences, 2);
        assert_eq!(stats.open_visits, 1);
    }

    #[test]
    fn predicate_mismatch_is_rejected() {
        let mut engine = ShardedEngine::new(config()).unwrap();
        engine.ingest(presence(3, 1, 0));
        let tmp = TempPath::new("mismatch");
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&tmp.0).unwrap();
        engine.checkpoint(&mut log).unwrap();
        drop(log);

        let two_predicates = EngineConfig::new(vec![
            (IntervalPredicate::in_cells([cell(1)]), label("one")),
            (IntervalPredicate::any(), label("all")),
        ])
        .with_shards(2);
        assert!(matches!(
            resume_from_log(two_predicates, &tmp.0),
            Err(EngineError::PredicateCountMismatch { .. })
        ));
    }

    #[test]
    fn shard_mismatch_is_rejected() {
        let mut engine = ShardedEngine::new(config()).unwrap();
        engine.ingest(presence(3, 1, 0));
        let tmp = TempPath::new("shards");
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&tmp.0).unwrap();
        engine.checkpoint(&mut log).unwrap();
        drop(log);
        let wrong = EngineConfig::new(vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))])
            .with_shards(3);
        assert!(matches!(
            resume_from_log(wrong, &tmp.0),
            Err(EngineError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn torn_higher_sequence_is_never_reused() {
        let tmp = TempPath::new("seq-guard");
        {
            let mut engine = ShardedEngine::new(config()).unwrap();
            engine.ingest(presence(1, 1, 0));
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&tmp.0).unwrap();
            assert_eq!(engine.checkpoint(&mut log).unwrap(), 1);
            // Crash mid-checkpoint 2: only shard 0's frame became durable.
            engine.ingest(presence(1, 0, 20));
            engine.flush();
            log.append(&CheckpointFrame {
                sequence: 2,
                shard: 0,
                shard_count: 2,
                payload: encode_shard(
                    &ShardSnapshot {
                        watermark: None,
                        visits: Vec::new(),
                        closed: Vec::new(),
                        pending: Vec::new(),
                        finished: Vec::new(),
                        stats: ShardStats::default(),
                    },
                    1,
                ),
            })
            .unwrap();
            log.sync().unwrap();
        }
        // Recovery restores checkpoint 1 but must skip past sequence 2.
        let (mut restored, mut log, _) = resume_from_log(config(), &tmp.0).unwrap();
        restored.ingest(presence(1, 0, 20));
        let seq = restored.checkpoint(&mut log).unwrap();
        assert_eq!(seq, 3, "torn sequence 2 is burned, not reused");
        drop(log);
        // The new checkpoint is complete and wins the next recovery.
        let (again, _, _) = resume_from_log(config(), &tmp.0).unwrap();
        assert_eq!(again.stats().presences, 2);
    }

    #[test]
    fn empty_log_starts_fresh() {
        let tmp = TempPath::new("fresh");
        let (engine, _log, report) = resume_from_log(config(), &tmp.0).unwrap();
        assert!(report.is_clean());
        assert_eq!(engine.stats().events, 0);
    }

    #[test]
    fn bad_version_and_truncation_are_rejected() {
        assert!(matches!(
            decode_shard(&[]),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            decode_shard(&[9, 0, 0]),
            Err(CheckpointError::BadVersion(9))
        ));
        // Corrupt a valid payload by truncating it anywhere: never panics.
        let snapshot = ShardSnapshot {
            watermark: Some(Timestamp(5)),
            visits: Vec::new(),
            closed: vec![(1, Timestamp(3)), (2, Timestamp(4))],
            pending: Vec::new(),
            finished: Vec::new(),
            stats: ShardStats::default(),
        };
        let payload = encode_shard(&snapshot, 1);
        for cut in 0..payload.len() {
            assert!(decode_shard(&payload[..cut]).is_err(), "cut at {cut}");
        }
        let (back, preds) = decode_shard(&payload).unwrap();
        assert_eq!(preds, 1);
        assert_eq!(back, snapshot);
    }
}
