//! The sharded ingestion engine.
//!
//! [`ShardedEngine`] hash-partitions visits across N independent shards.
//! Because a visit's lifetime is confined to one shard and shards apply
//! their events in arrival order, the shard count is invisible in the
//! output: episodes are identical for 1, 2, or 8 shards (property-tested
//! in `tests/equivalence.rs`), and [`ShardedEngine::drain`] returns them
//! in one deterministic global order.

use std::sync::Arc;

use sitm_core::{AnnotationSet, Duration, IntervalPredicate, Timestamp};
use sitm_obs::{Counter, MetricsRegistry};
use sitm_store::{CheckpointFrame, LogStore, StoreError};

use crate::checkpoint::{encode_shard, CheckpointError};
use crate::event::{StreamEvent, VisitKey};
use crate::live_query::LiveSnapshot;
use crate::shard::{Shard, ShardCtx, ShardStats};

pub use crate::shard::EmittedEpisode;
pub use crate::visit::Anomalies;

/// Engine construction and restore failures.
#[derive(Debug)]
pub enum EngineError {
    /// At least one shard is required.
    ZeroShards,
    /// Restoring from frames recorded with a different shard count.
    ShardCountMismatch {
        /// Shards in the configuration.
        configured: usize,
        /// Shards recorded in the checkpoint.
        recorded: usize,
    },
    /// Restoring from frames recorded with a different predicate table.
    PredicateCountMismatch {
        /// Predicates in the configuration.
        configured: usize,
        /// Predicates recorded in the checkpoint.
        recorded: usize,
    },
    /// A checkpoint payload failed to decode.
    Checkpoint(CheckpointError),
    /// The backing log failed.
    Store(StoreError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroShards => write!(f, "engine needs at least one shard"),
            EngineError::ShardCountMismatch {
                configured,
                recorded,
            } => write!(
                f,
                "checkpoint has {recorded} shard(s), configuration has {configured}"
            ),
            EngineError::PredicateCountMismatch {
                configured,
                recorded,
            } => write!(
                f,
                "checkpoint has {recorded} predicate(s), configuration has {configured}"
            ),
            EngineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            EngineError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Engine configuration. Predicates are code, so the config is built at
/// startup and re-supplied identically on restore (only *state* is
/// checkpointed).
pub struct EngineConfig {
    /// The episode detectors: `(P_ep, A'_traj)` pairs applied to every
    /// visit (Def. 3.4).
    pub predicates: Vec<(IntervalPredicate, AnnotationSet)>,
    /// Hash partitions.
    pub shards: usize,
    /// Per-shard inbox size before events are applied in a batch.
    pub batch_capacity: usize,
    /// Drop zero-duration detections on arrival (§4.1's ~10% errors).
    pub drop_instantaneous: bool,
    /// How long after a visit closes its late events are still fenced.
    /// The fence is *event-time deterministic*: an event timestamped at
    /// or before `close + allowed_lateness` is rejected (`after_close`),
    /// one beyond it retires the fence and re-opens the visit
    /// implicitly — a pure function of the visit's own history, so the
    /// decision cannot depend on shard batching or worker scheduling
    /// (what keeps the work-stealing runtime bit-identical to the
    /// sequential one under arbitrary interleavings).
    pub allowed_lateness: Duration,
    /// Per-shard cap on remembered close fences — a memory-protection
    /// valve, not a semantic knob. Past it, fences with the smallest
    /// close instants are evicted; stragglers for an evicted visit
    /// re-open implicitly, the same outcome an expired fence produces.
    /// Below the cap, fencing is exactly identical across runtimes
    /// (the differential tests' regime). Above it, the *surviving set*
    /// still agrees at every barrier (both engines keep the
    /// cap-largest close instants), but eviction *timing* differs —
    /// the sequential engine evicts at each close, the work-stealing
    /// engine at its sweep points — so a straggler racing an eviction
    /// may be judged fenced by one runtime and re-opened by the other.
    /// Size the cap above the realistic straggler horizon.
    pub fence_capacity: usize,
    /// Retain each open visit's accepted intervals (in memory and in
    /// checkpoints) so live queries can see its trajectory prefix. Off by
    /// default: retention costs memory proportional to open-visit trace
    /// length.
    pub retain_intervals: bool,
    /// Retain each *closed* visit's completed trajectory (in memory and
    /// in checkpoints) until a warehouse flush takes it
    /// (`take_finished`). Implies interval retention — the trajectory is
    /// assembled from the retained intervals at close. Off by default;
    /// the memory a retained backlog costs is exactly what
    /// [`crate::Flusher`] exists to bound.
    pub retain_finished: bool,
    /// Backpressure depth of the parallel engine (`ParallelEngine`), in
    /// batches per worker: producers block once
    /// `channel_depth × batch_capacity × workers` events are queued in
    /// the work-stealing scheduler. Ignored by the sequential engine.
    pub channel_depth: usize,
    /// Where the engine's `engine.*` instruments live (events
    /// ingested/fenced, route-vs-steal counts, queue-depth gauges).
    /// Defaults to the process-global registry; a server injects its
    /// own so one pipeline's counters stay isolated.
    pub metrics: MetricsRegistry,
}

impl EngineConfig {
    /// A config with the given predicates and defaults for the rest
    /// (8 shards, 128-event batches, no filtering).
    pub fn new(predicates: Vec<(IntervalPredicate, AnnotationSet)>) -> Self {
        EngineConfig {
            predicates,
            shards: 8,
            batch_capacity: 128,
            drop_instantaneous: false,
            allowed_lateness: Duration::hours(24),
            fence_capacity: 65_536,
            retain_intervals: false,
            retain_finished: false,
            channel_depth: 64,
            metrics: MetricsRegistry::global().clone(),
        }
    }

    /// The per-shard apply context this configuration induces.
    pub(crate) fn ctx(&self) -> ShardCtx<'_> {
        ShardCtx {
            predicates: &self.predicates,
            drop_instantaneous: self.drop_instantaneous,
            batch_capacity: self.batch_capacity,
            allowed_lateness: self.allowed_lateness,
            fence_capacity: self.fence_capacity,
            retain_intervals: self.retain_intervals || self.retain_finished,
            retain_finished: self.retain_finished,
        }
    }

    /// Overrides the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the inbox capacity.
    #[must_use]
    pub fn with_batch_capacity(mut self, capacity: usize) -> Self {
        self.batch_capacity = capacity;
        self
    }

    /// Enables the zero-duration filter.
    #[must_use]
    pub fn dropping_instantaneous(mut self) -> Self {
        self.drop_instantaneous = true;
        self
    }

    /// Overrides how long closed visits fence their late events.
    #[must_use]
    pub fn with_allowed_lateness(mut self, lateness: Duration) -> Self {
        self.allowed_lateness = lateness;
        self
    }

    /// Overrides the per-shard cap on remembered close fences.
    #[must_use]
    pub fn with_fence_capacity(mut self, capacity: usize) -> Self {
        self.fence_capacity = capacity;
        self
    }

    /// Enables live queries: open visits retain their accepted intervals
    /// so `live_snapshot` can expose each one's trajectory prefix.
    #[must_use]
    pub fn with_live_queries(mut self) -> Self {
        self.retain_intervals = true;
        self
    }

    /// Enables the warehouse drain: closed visits retain their completed
    /// trajectory until `take_finished` (normally driven by a
    /// [`crate::Flusher`]) spills them into the segment tier. Implies
    /// live-query interval retention.
    #[must_use]
    pub fn with_warehouse(mut self) -> Self {
        self.retain_intervals = true;
        self.retain_finished = true;
        self
    }

    /// Overrides the parallel engine's backpressure depth (batches per
    /// worker).
    #[must_use]
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth;
        self
    }

    /// Points the engine's `engine.*` instruments at `registry` instead
    /// of the process-global default.
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = registry;
        self
    }
}

/// Sequential-engine instrument handles, resolved once at construction
/// so the per-event path pays a single relaxed atomic add.
struct EngineMetrics {
    events_ingested: Arc<Counter>,
    events_fenced: Arc<Counter>,
    /// Fence rejections already published to the counter — deltas are
    /// published at each flush, so a restore (whose shard stats carry
    /// history) never double-counts.
    published_fenced: u64,
}

impl EngineMetrics {
    fn bind(registry: &MetricsRegistry, published_fenced: u64) -> EngineMetrics {
        EngineMetrics {
            events_ingested: registry.counter("engine.events_ingested"),
            events_fenced: registry.counter("engine.events_fenced"),
            published_fenced,
        }
    }
}

/// Aggregated engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events applied across shards.
    pub events: u64,
    /// Presence intervals accepted.
    pub presences: u64,
    /// Raw fixes applied.
    pub fixes: u64,
    /// Visits opened.
    pub visits_opened: u64,
    /// Visits closed.
    pub visits_closed: u64,
    /// Episodes finalized.
    pub episodes: u64,
    /// Inbox flushes.
    pub batches_flushed: u64,
    /// Visits currently resident.
    pub open_visits: u64,
    /// Rejected/adapted events.
    pub anomalies: Anomalies,
}

impl EngineStats {
    /// Folds one shard's counters (plus its open-visit census) in — the
    /// single aggregation point for both engines, so a counter added to
    /// [`ShardStats`] cannot silently diverge between them.
    pub fn absorb_shard(&mut self, shard: &ShardStats, open_visits: u64) {
        self.events += shard.events;
        self.presences += shard.presences;
        self.fixes += shard.fixes;
        self.visits_opened += shard.visits_opened;
        self.visits_closed += shard.visits_closed;
        self.episodes += shard.episodes;
        self.batches_flushed += shard.batches_flushed;
        self.anomalies.absorb(&shard.anomalies);
        self.open_visits += open_visits;
    }
}

/// Hash-sharded online trajectory-ingestion engine.
pub struct ShardedEngine {
    config: EngineConfig,
    shards: Vec<Shard>,
    sequence: u64,
    metrics: EngineMetrics,
    /// Advances whenever the queryable live state may have changed
    /// (see [`ShardedEngine::epoch`]).
    epoch: u64,
    /// Mutations since the epoch was last stamped.
    dirty: bool,
    /// The live snapshot memoized for `epoch` — shared, so concurrent
    /// readers clone an `Arc` instead of re-cutting the live state.
    snapshot_cache: Option<(u64, Arc<LiveSnapshot>)>,
}

/// Reconciles a restored snapshot with the configuration's retention
/// setting: with retention off, a prefix checkpointed by a retaining
/// config would otherwise survive restore *frozen* — never extended by
/// `feed`, yet served by `live_trajectory` as the visit's current
/// state. Dropping it makes the visit honestly unqueryable instead.
pub(crate) fn reconcile_retention(
    snapshot: &mut crate::shard::ShardSnapshot,
    config: &EngineConfig,
) {
    if !config.retain_intervals && !config.retain_finished {
        for (_, visit) in &mut snapshot.visits {
            visit.intervals.clear();
        }
    }
    // A finished backlog checkpointed by a warehouse-draining config
    // restoring into a non-draining one: nothing will ever take it, so
    // drop it rather than hold it forever.
    if !config.retain_finished {
        snapshot.finished.clear();
    }
}

/// FNV-1a over the visit key: stable across runs and platforms, so a
/// given visit always lands on the same shard. The hash is the shared
/// [`sitm_store::fnv1a`] — the same function the warehouse Bloom
/// filters probe with — so the routing constants cannot drift from the
/// rest of the stack.
pub(crate) fn shard_of(visit: VisitKey, shards: usize) -> usize {
    (sitm_store::fnv1a(&visit.0.to_le_bytes()) % shards as u64) as usize
}

impl ShardedEngine {
    /// Builds an engine from a configuration.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let shards = (0..config.shards).map(|_| Shard::new()).collect();
        let metrics = EngineMetrics::bind(&config.metrics, 0);
        Ok(ShardedEngine {
            config,
            shards,
            sequence: 0,
            metrics,
            epoch: 0,
            dirty: false,
            snapshot_cache: None,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Raises the checkpoint sequence counter to at least `sequence`.
    ///
    /// Recovery calls this with the highest sequence present in the log —
    /// including torn checkpoints that were *not* restored — so the next
    /// checkpoint never reuses a sequence number whose stale frames would
    /// make it look incomplete (or duplicated) to a later recovery.
    pub fn advance_sequence_to(&mut self, sequence: u64) {
        self.sequence = self.sequence.max(sequence);
    }

    /// Routes one event to its shard.
    pub fn ingest(&mut self, event: StreamEvent) {
        self.dirty = true;
        let shard = shard_of(event.visit(), self.config.shards);
        self.shards[shard].enqueue(event, &self.config.ctx());
        self.metrics.events_ingested.inc();
    }

    /// Ingests a whole feed.
    pub fn ingest_all<I: IntoIterator<Item = StreamEvent>>(&mut self, events: I) {
        for event in events {
            self.ingest(event);
        }
    }

    /// Applies every buffered event now.
    pub fn flush(&mut self) {
        let ctx = self.config.ctx();
        for shard in &mut self.shards {
            shard.flush(&ctx);
        }
        // Publish the fence-rejection delta since the last flush.
        let fenced: u64 = self
            .shards
            .iter()
            .map(|s| s.stats().anomalies.after_close)
            .sum();
        let delta = fenced.saturating_sub(self.metrics.published_fenced);
        if delta > 0 {
            self.metrics.events_fenced.add(delta);
            self.metrics.published_fenced = fenced;
        }
    }

    /// Flushes, then returns every episode finalized since the last drain,
    /// in deterministic global order.
    pub fn drain(&mut self) -> Vec<EmittedEpisode> {
        self.flush();
        let mut out: Vec<EmittedEpisode> = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.take_pending());
        }
        if !out.is_empty() {
            // Pending episodes ride the live snapshot; removing them
            // changes the queryable cut.
            self.dirty = true;
        }
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// Returns drained episodes to the pending pool (the undo of
    /// [`ShardedEngine::drain`] for deltas that could not be delivered);
    /// the next drain re-emits them in the usual deterministic order.
    pub fn requeue_pending(&mut self, episodes: Vec<EmittedEpisode>) {
        if episodes.is_empty() {
            return;
        }
        self.dirty = true;
        let shards = self.config.shards;
        for episode in episodes {
            let shard = shard_of(episode.visit, shards);
            self.shards[shard].requeue_pending(episode);
        }
    }

    /// End-of-stream: closes every open visit, then drains.
    pub fn finish(&mut self) -> Vec<EmittedEpisode> {
        self.dirty = true;
        self.flush();
        let ctx = self.config.ctx();
        for shard in &mut self.shards {
            shard.close_all(&ctx);
        }
        self.drain()
    }

    /// Flushes, then takes every visit trajectory completed since the
    /// last take, in deterministic global order (span start, span end,
    /// encoded bytes — [`sitm_store::sort_run`]'s canonical order, so
    /// both runtimes and any shard count hand a warehouse flusher the
    /// identical batch). Empty unless
    /// [`EngineConfig::with_warehouse`] is on. The exactly-once
    /// contract mirrors `drain`'s: trajectories taken before a
    /// checkpoint are never re-emitted after restore, untaken ones
    /// reappear.
    pub fn take_finished(&mut self) -> Vec<sitm_core::SemanticTrajectory> {
        self.flush();
        let mut out: Vec<sitm_core::SemanticTrajectory> = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.take_finished().into_iter().map(|(_, t)| t));
        }
        sitm_store::sort_run(&mut out);
        out
    }

    /// The engine's state epoch: advances whenever the queryable live
    /// state may have changed since the last stamp (an ingest, a drain,
    /// a finish, a restore, a requeue). Stamping is a barrier-free
    /// bookkeeping step — the counter is what keys the snapshot cache
    /// and what push subscribers see on notifications.
    pub fn epoch(&mut self) -> u64 {
        if self.dirty {
            self.epoch += 1;
            self.dirty = false;
            self.snapshot_cache = None;
        }
        self.epoch
    }

    /// A snapshot-consistent cut of the live state: every open visit's
    /// trajectory prefix (requires
    /// [`EngineConfig::with_live_queries`]) plus the episodes finalized
    /// but not yet drained. See [`crate::live_query`] for the
    /// consistency model and the query surface.
    ///
    /// The cut is **epoch-cached**: while nothing mutates the engine,
    /// repeated calls share one [`Arc`]'d snapshot instead of re-cutting
    /// (and re-cloning) the live state per call. Any ingest invalidates
    /// the cache.
    pub fn live_snapshot(&mut self) -> Arc<LiveSnapshot> {
        self.live_snapshot_cached().0
    }

    /// [`ShardedEngine::live_snapshot`], also reporting whether the cut
    /// was served from the epoch cache (`true` = cache hit).
    pub fn live_snapshot_cached(&mut self) -> (Arc<LiveSnapshot>, bool) {
        let epoch = self.epoch();
        if let Some((cached_epoch, snapshot)) = &self.snapshot_cache {
            if *cached_epoch == epoch {
                return (Arc::clone(snapshot), true);
            }
        }
        let _rebuild = sitm_obs::trace::child_detail("snapshot_rebuild");
        self.flush();
        let snapshot = Arc::new(LiveSnapshot::from_shards(
            self.shards.iter().map(Shard::live_state).collect(),
        ));
        self.snapshot_cache = Some((epoch, Arc::clone(&snapshot)));
        (snapshot, false)
    }

    /// The engine watermark: the *minimum* of the per-shard high-water
    /// marks, i.e. the instant up to which every shard has seen its
    /// events. A shard that has never received an event has trivially
    /// seen all of them and does not hold the watermark back; `None`
    /// only until the first event is applied anywhere.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.shards
            .iter()
            .filter_map(|shard| shard.watermark())
            .min()
    }

    /// Aggregated counters.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        for shard in &self.shards {
            stats.absorb_shard(shard.stats(), shard.open_visits() as u64);
        }
        stats
    }

    /// Persists a consistent snapshot of every shard into `log` (one
    /// [`CheckpointFrame`] per shard sharing a fresh sequence number),
    /// then fsyncs. Returns the sequence.
    ///
    /// Pending (finalized but undrained) episodes are included, so the
    /// recovery contract is exactly-once relative to `drain`: episodes
    /// drained before the checkpoint are never re-emitted, episodes not
    /// yet drained reappear after restore.
    pub fn checkpoint(&mut self, log: &mut LogStore<CheckpointFrame>) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        crate::checkpoint::append_and_sync(log, &frames)?;
        Ok(sequence)
    }

    /// Flushes and captures one complete checkpoint as frames (one per
    /// shard, sharing a fresh sequence), without touching a log. The
    /// building block behind [`ShardedEngine::checkpoint`] and
    /// [`crate::Checkpointer::commit`]'s compacting commit path.
    pub fn checkpoint_frames(&mut self) -> Vec<CheckpointFrame> {
        self.flush();
        self.sequence += 1;
        let sequence = self.sequence;
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| CheckpointFrame {
                sequence,
                shard: i as u32,
                shard_count: self.config.shards as u32,
                payload: encode_shard(&shard.snapshot(), self.config.predicates.len()),
            })
            .collect()
    }

    /// Checkpoints through a [`crate::Checkpointer`], which appends or
    /// compacts per its [`sitm_store::CompactionPolicy`] so the log stays
    /// bounded. Returns the sequence.
    pub fn checkpoint_into(
        &mut self,
        checkpointer: &mut crate::Checkpointer,
    ) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        checkpointer.commit(frames)?;
        Ok(sequence)
    }

    /// Rebuilds an engine from the frames of one complete checkpoint
    /// (ordered by shard, as `latest_complete_checkpoint` returns them).
    /// The configuration must match the one the checkpoint was taken
    /// under.
    pub fn restore(config: EngineConfig, frames: &[&CheckpointFrame]) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let (shards, sequence) = crate::checkpoint::decode_checkpoint(&config, frames)?;
        // Restored shard stats carry pre-checkpoint history; start the
        // published watermark there so restore never re-counts it.
        let published_fenced = shards
            .iter()
            .map(|s: &Shard| s.stats().anomalies.after_close)
            .sum();
        let metrics = EngineMetrics::bind(&config.metrics, published_fenced);
        Ok(ShardedEngine {
            config,
            shards,
            sequence,
            metrics,
            epoch: 0,
            dirty: false,
            snapshot_cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, PresenceInterval, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig::new(vec![
            (IntervalPredicate::in_cells([cell(1)]), label("one")),
            (IntervalPredicate::any(), label("whole")),
        ])
        .with_shards(shards)
        .with_batch_capacity(4)
    }

    fn feed() -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for v in 0..6u64 {
            let base = v as i64 * 10;
            events.push(StreamEvent::VisitOpened {
                visit: VisitKey(v),
                moving_object: format!("mo-{v}"),
                annotations: label("visit"),
                at: Timestamp(base),
            });
            for (i, c) in [1usize, 0, 1].iter().enumerate() {
                events.push(StreamEvent::Presence {
                    visit: VisitKey(v),
                    interval: PresenceInterval::new(
                        TransitionTaken::Unknown,
                        cell(*c),
                        Timestamp(base + i as i64 * 100),
                        Timestamp(base + i as i64 * 100 + 50),
                    ),
                });
            }
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(base + 250),
            });
        }
        crate::event::sort_feed(&mut events);
        events
    }

    #[test]
    fn shard_count_does_not_change_output() {
        let mut reference: Option<Vec<EmittedEpisode>> = None;
        for shards in [1usize, 2, 8] {
            let mut engine = ShardedEngine::new(config(shards)).unwrap();
            engine.ingest_all(feed());
            let episodes = engine.finish();
            match &reference {
                None => reference = Some(episodes),
                Some(expected) => assert_eq!(&episodes, expected, "{shards} shards"),
            }
        }
        let reference = reference.unwrap();
        // 6 visits × (2 'one' runs + 1 'whole' run) each.
        assert_eq!(reference.len(), 18);
    }

    #[test]
    fn drain_is_incremental_and_non_duplicating() {
        let mut engine = ShardedEngine::new(config(2)).unwrap();
        let events = feed();
        let mid = events.len() / 2;
        engine.ingest_all(events[..mid].to_vec());
        let first = engine.drain();
        engine.ingest_all(events[mid..].to_vec());
        let mut rest = engine.finish();
        let mut all = first;
        all.append(&mut rest);
        all.sort_by_key(|a| a.sort_key());

        let mut oneshot = ShardedEngine::new(config(2)).unwrap();
        oneshot.ingest_all(events);
        assert_eq!(all, oneshot.finish());
    }

    #[test]
    fn stats_and_watermark_track_the_stream() {
        let mut engine = ShardedEngine::new(config(1)).unwrap();
        engine.ingest_all(feed());
        engine.flush();
        let stats = engine.stats();
        assert_eq!(stats.visits_opened, 6);
        assert_eq!(stats.visits_closed, 6);
        assert_eq!(stats.presences, 18);
        assert_eq!(stats.anomalies.total(), 0);
        assert_eq!(engine.watermark(), Some(Timestamp(300)));
        assert_eq!(engine.stats().open_visits, 0);
    }

    #[test]
    fn watermark_ignores_shards_with_no_events() {
        // 6 visits over 8 shards: some shards never see an event, but the
        // watermark must still advance.
        let mut engine = ShardedEngine::new(config(8)).unwrap();
        assert_eq!(engine.watermark(), None, "nothing ingested yet");
        engine.ingest_all(feed());
        engine.flush();
        // The slowest *populated* shard has at least reached its own last
        // visit close (v=0 closes at t=250); empty shards don't pin the
        // watermark to None.
        assert!(engine.watermark() >= Some(Timestamp(250)));
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(
            ShardedEngine::new(config(0)),
            Err(EngineError::ZeroShards)
        ));
    }
}
