#![warn(missing_docs)]

//! # sitm-stream
//!
//! Sharded **online** construction of the Semantic Indoor Trajectory
//! Model: the batch pipeline (raw fixes → presence intervals → episodic
//! segmentation) rebuilt as an incremental engine that serves live
//! traffic, while provably producing the *exact same episodes* as
//! `sitm_core::maximal_episodes` over the completed trajectory.
//!
//! * [`event`] — the ingestion vocabulary: per-visit [`StreamEvent`]s
//!   (open / raw fix / presence / close), interleaved across visitors;
//! * [`visit`] — the per-visit state machine: open fix-derived presence
//!   interval, trace-order validation, one [`sitm_core::RunBuilder`] per
//!   configured predicate;
//! * [`segmenter`] — [`IncrementalSegmenter`]: predicate-driven episode
//!   detection over one visit, emitting each [`sitm_core::Episode`] the
//!   moment its maximal run closes;
//! * [`shard`] — a hash partition of visits with a bounded event inbox,
//!   per-shard watermark, and deterministic drain order;
//! * [`engine`] — [`ShardedEngine`]: N shards behind one ingest/drain
//!   façade, with aggregate statistics and anomaly accounting;
//! * [`parallel`] — [`ParallelEngine`]: N worker threads over a
//!   work-stealing scheduler of visits (per-worker deques,
//!   visit-affinity pinning, steal-on-idle of whole cold visits), with
//!   the identical surface and (provably) identical output;
//! * [`live_index`] — [`LiveIndex`]: incrementally maintained postings
//!   over the open-visit population (cell → visits, moving object →
//!   visits, span-start order), updated per accepted event;
//! * [`live_query`] — [`LiveSnapshot`]: snapshot-consistent cuts of the
//!   live state (open-visit trajectory prefixes + undrained episodes),
//!   queryable with `sitm_query::Predicate` through the live index —
//!   candidate narrowing with a full re-check, exactly like the
//!   warehouse — and federated across engines and warehouses via
//!   `sitm_query::TrajectorySource`;
//! * [`checkpoint`] — crash recovery: shard state serialized through
//!   `sitm-store`'s CRC-framed [`sitm_store::LogStore`] as
//!   [`sitm_store::CheckpointFrame`]s, restored without duplicating or
//!   dropping episodes; [`Checkpointer`] keeps the log bounded by
//!   compacting per a [`sitm_store::CompactionPolicy`];
//! * [`flusher`] — [`Flusher`]: the live → warehouse spill pipeline —
//!   drains finished visits (`take_finished`, retained under
//!   [`EngineConfig::with_warehouse`]) out of either engine into
//!   `sitm_query::SegmentedDb`'s immutable segment tier, bounding
//!   engine memory while history accumulates on disk;
//! * [`replay`] — a streaming source over the calibrated Louvre dataset:
//!   replays `sitm_louvre::generate_dataset` output as one
//!   timestamp-ordered event feed;
//! * [`occupancy`] — live per-cell occupancy derived from the feed (the
//!   "how many visitors are in the Denon wing *right now*" query).
//!
//! ## Sequential or parallel?
//!
//! [`ShardedEngine`] and [`ParallelEngine`] expose the same surface
//! (`ingest`/`flush`/`drain`/`finish`/`watermark`/`checkpoint`/
//! `restore`/`live_snapshot`) and produce the same episodes — the
//! differential property tests in `tests/parallel_equivalence.rs` pin
//! parallel == sequential == batch for 1/2/4/8 workers, under shuffled
//! event interleavings, under single-hot-shard skew, and across
//! crash/checkpoint/restore (checkpoints are runtime-portable in both
//! directions). Choose by deployment shape:
//!
//! * **Sequential** — zero threads, zero scheduler overhead,
//!   deterministic single-stack profiling; right for tests, embedded
//!   replays, and small feeds where per-event cost dominates.
//! * **Parallel** — N worker threads over a **work-stealing router**:
//!   events queue per visit, ready visits ride bounded per-worker
//!   deques, and an idle worker steals whole *cold* visits (queued,
//!   not mid-application) from the back of the busiest deque. Uniform
//!   loads scale with cores like the old thread-per-shard router did;
//!   *skewed* loads no longer collapse — a single hot visit serializes
//!   only itself while every cold visit drains through the idle
//!   workers, instead of the hot visit's whole hash shard pinning one
//!   worker and starving its neighbours. Backpressure bounds queued
//!   events at `channel_depth × batch_capacity × workers`. Right for
//!   live multi-core ingest, especially under Zipf-shaped visit
//!   popularity (`bench_stream`'s `skewed_ingest` group measures it).
//!
//! Correctness does not depend on the choice: a visit's events are
//! applied in arrival order by at most one worker at a time
//! (visit-affinity pinning), and every per-visit decision — including
//! the late-event fence, which is event-time deterministic — is a pure
//! function of the visit's own history, so thread interleavings cannot
//! reorder or re-judge any visit's history.
//!
//! ## Snapshot consistency
//!
//! Every barrier operation (`drain`, `live_snapshot`, `checkpoint`) cuts
//! the stream at the call: events ingested before it are fully visible,
//! later ones entirely absent — on the parallel engine the cut rides the
//! per-shard command channels, after the outstanding event batches. See
//! [`live_query`] for the model and [`checkpoint`] for the exactly-once
//! recovery contract relative to `drain`.
//!
//! ## Batch equivalence
//!
//! The engines and the batch extractor share `sitm_core::RunBuilder`, and
//! the property tests in `tests/equivalence.rs` replay whole generated
//! Louvre days through 1, 2, and 8 shards, asserting the streamed episode
//! sets equal the batch ones visit-for-visit — including across a
//! checkpoint/restore crash in the middle of the stream.

pub mod checkpoint;
pub mod engine;
pub mod event;
pub mod flusher;
pub mod live_index;
pub mod live_query;
pub mod occupancy;
pub mod parallel;
pub mod replay;
pub mod segmenter;
pub mod shard;
pub mod visit;

pub use checkpoint::{
    resume_compacting, resume_from_log, resume_parallel_compacting, resume_parallel_from_log,
    CheckpointError, Checkpointer,
};
pub use engine::{
    Anomalies, EmittedEpisode, EngineConfig, EngineError, EngineStats, ShardedEngine,
};
pub use event::{StreamEvent, VisitKey};
pub use flusher::{FinishedSource, Flusher};
pub use live_index::LiveIndex;
pub use live_query::{LiveSnapshot, LiveVisit, ShardLive};
pub use occupancy::OccupancyTracker;
pub use parallel::ParallelEngine;
pub use replay::{dataset_events, visit_trajectories};
pub use segmenter::IncrementalSegmenter;
