#![warn(missing_docs)]

//! # sitm-stream
//!
//! Sharded **online** construction of the Semantic Indoor Trajectory
//! Model: the batch pipeline (raw fixes → presence intervals → episodic
//! segmentation) rebuilt as an incremental engine that serves live
//! traffic, while provably producing the *exact same episodes* as
//! `sitm_core::maximal_episodes` over the completed trajectory.
//!
//! * [`event`] — the ingestion vocabulary: per-visit [`StreamEvent`]s
//!   (open / raw fix / presence / close), interleaved across visitors;
//! * [`visit`] — the per-visit state machine: open fix-derived presence
//!   interval, trace-order validation, one [`sitm_core::RunBuilder`] per
//!   configured predicate;
//! * [`segmenter`] — [`IncrementalSegmenter`]: predicate-driven episode
//!   detection over one visit, emitting each [`sitm_core::Episode`] the
//!   moment its maximal run closes;
//! * [`shard`] — a hash partition of visits with a bounded event inbox,
//!   per-shard watermark, and deterministic drain order;
//! * [`engine`] — [`ShardedEngine`]: N shards behind one ingest/drain
//!   façade, with aggregate statistics and anomaly accounting;
//! * [`checkpoint`] — crash recovery: shard state serialized through
//!   `sitm-store`'s CRC-framed [`sitm_store::LogStore`] as
//!   [`sitm_store::CheckpointFrame`]s, restored without duplicating or
//!   dropping episodes;
//! * [`replay`] — a streaming source over the calibrated Louvre dataset:
//!   replays `sitm_louvre::generate_dataset` output as one
//!   timestamp-ordered event feed;
//! * [`occupancy`] — live per-cell occupancy derived from the feed (the
//!   "how many visitors are in the Denon wing *right now*" query).
//!
//! ## Batch equivalence
//!
//! The engine and the batch extractor share `sitm_core::RunBuilder`, and
//! the property tests in `tests/equivalence.rs` replay whole generated
//! Louvre days through 1, 2, and 8 shards, asserting the streamed episode
//! sets equal the batch ones visit-for-visit — including across a
//! checkpoint/restore crash in the middle of the stream.

pub mod checkpoint;
pub mod engine;
pub mod event;
pub mod occupancy;
pub mod replay;
pub mod segmenter;
pub mod shard;
pub mod visit;

pub use checkpoint::{resume_from_log, CheckpointError};
pub use engine::{
    Anomalies, EmittedEpisode, EngineConfig, EngineError, EngineStats, ShardedEngine,
};
pub use event::{StreamEvent, VisitKey};
pub use occupancy::OccupancyTracker;
pub use replay::{dataset_events, visit_trajectories};
pub use segmenter::IncrementalSegmenter;
