#![warn(missing_docs)]

//! # sitm-stream
//!
//! Sharded **online** construction of the Semantic Indoor Trajectory
//! Model: the batch pipeline (raw fixes → presence intervals → episodic
//! segmentation) rebuilt as an incremental engine that serves live
//! traffic, while provably producing the *exact same episodes* as
//! `sitm_core::maximal_episodes` over the completed trajectory.
//!
//! * [`event`] — the ingestion vocabulary: per-visit [`StreamEvent`]s
//!   (open / raw fix / presence / close), interleaved across visitors;
//! * [`visit`] — the per-visit state machine: open fix-derived presence
//!   interval, trace-order validation, one [`sitm_core::RunBuilder`] per
//!   configured predicate;
//! * [`segmenter`] — [`IncrementalSegmenter`]: predicate-driven episode
//!   detection over one visit, emitting each [`sitm_core::Episode`] the
//!   moment its maximal run closes;
//! * [`shard`] — a hash partition of visits with a bounded event inbox,
//!   per-shard watermark, and deterministic drain order;
//! * [`engine`] — [`ShardedEngine`]: N shards behind one ingest/drain
//!   façade, with aggregate statistics and anomaly accounting;
//! * [`parallel`] — [`ParallelEngine`]: the same N shards, each on its
//!   own worker thread behind a bounded channel, with the identical
//!   surface and (provably) identical output;
//! * [`live_query`] — [`LiveSnapshot`]: snapshot-consistent cuts of the
//!   live state (open-visit trajectory prefixes + undrained episodes),
//!   queryable with `sitm_query::Predicate` and federated across engines
//!   and warehouses via `sitm_query::TrajectorySource`;
//! * [`checkpoint`] — crash recovery: shard state serialized through
//!   `sitm-store`'s CRC-framed [`sitm_store::LogStore`] as
//!   [`sitm_store::CheckpointFrame`]s, restored without duplicating or
//!   dropping episodes; [`Checkpointer`] keeps the log bounded by
//!   compacting per a [`sitm_store::CompactionPolicy`];
//! * [`replay`] — a streaming source over the calibrated Louvre dataset:
//!   replays `sitm_louvre::generate_dataset` output as one
//!   timestamp-ordered event feed;
//! * [`occupancy`] — live per-cell occupancy derived from the feed (the
//!   "how many visitors are in the Denon wing *right now*" query).
//!
//! ## Sequential or parallel?
//!
//! [`ShardedEngine`] and [`ParallelEngine`] expose the same surface
//! (`ingest`/`flush`/`drain`/`finish`/`watermark`/`checkpoint`/
//! `restore`/`live_snapshot`) and produce the same episodes — the
//! differential property tests in `tests/parallel_equivalence.rs` pin
//! parallel == sequential == batch for 1/2/4/8 workers, under shuffled
//! event interleavings, and across crash/checkpoint/restore. Choose by
//! deployment shape:
//!
//! * **Sequential** — zero threads, zero channel overhead, deterministic
//!   single-stack profiling; right for tests, embedded replays, and
//!   small feeds where per-event cost dominates.
//! * **Parallel** — one worker thread per shard; the caller's thread
//!   only hashes and batches, so predicate evaluation and visit state
//!   maintenance scale with cores. Bounded channels give backpressure
//!   instead of unbounded queueing. Right for live multi-core ingest.
//!
//! Correctness does not depend on the choice: a visit lives entirely on
//! one shard and each shard applies its events in arrival order, so
//! thread interleavings cannot reorder any visit's history.
//!
//! ## Snapshot consistency
//!
//! Every barrier operation (`drain`, `live_snapshot`, `checkpoint`) cuts
//! the stream at the call: events ingested before it are fully visible,
//! later ones entirely absent — on the parallel engine the cut rides the
//! per-shard command channels, after the outstanding event batches. See
//! [`live_query`] for the model and [`checkpoint`] for the exactly-once
//! recovery contract relative to `drain`.
//!
//! ## Batch equivalence
//!
//! The engines and the batch extractor share `sitm_core::RunBuilder`, and
//! the property tests in `tests/equivalence.rs` replay whole generated
//! Louvre days through 1, 2, and 8 shards, asserting the streamed episode
//! sets equal the batch ones visit-for-visit — including across a
//! checkpoint/restore crash in the middle of the stream.

pub mod checkpoint;
pub mod engine;
pub mod event;
pub mod live_query;
pub mod occupancy;
pub mod parallel;
pub mod replay;
pub mod segmenter;
pub mod shard;
pub mod visit;

pub use checkpoint::{
    resume_compacting, resume_from_log, resume_parallel_compacting, resume_parallel_from_log,
    CheckpointError, Checkpointer,
};
pub use engine::{
    Anomalies, EmittedEpisode, EngineConfig, EngineError, EngineStats, ShardedEngine,
};
pub use event::{StreamEvent, VisitKey};
pub use live_query::{LiveSnapshot, LiveVisit, ShardLive};
pub use occupancy::OccupancyTracker;
pub use parallel::ParallelEngine;
pub use replay::{dataset_events, visit_trajectories};
pub use segmenter::IncrementalSegmenter;
