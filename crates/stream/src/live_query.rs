//! Live queries over in-flight shard state.
//!
//! The batch query stack (`sitm-query`) sees trajectories only after
//! their visits close and drain. This module makes the *live* state
//! visible too: every open visit's trajectory prefix plus every episode
//! that is finalized but not yet drained — the moving-object meta-model's
//! "spatio-temporal predicates over live trajectories" served straight
//! from the engine.
//!
//! ## Snapshot consistency
//!
//! A [`LiveSnapshot`] is a *consistent cut*: both engines produce it by
//! flushing, then capturing every shard's state at one point in the
//! command order, so an event is either entirely visible (its effects on
//! the prefix, the open runs, and the pending episodes all present) or
//! entirely absent. For [`crate::ParallelEngine`] the cut is a quiesce
//! point of the work-stealing scheduler: every event ingested before the
//! call is applied and deposited before the capture, everything after is
//! excluded — the same contract the sequential engine gets from its
//! in-line flush. Draining at the same cut (`drain` right after
//! `live_snapshot`) yields exactly the snapshot's `pending` set.
//!
//! Prefix visibility requires interval retention
//! ([`crate::EngineConfig::with_live_queries`]); without it, open visits
//! are counted in [`LiveSnapshot::unqueryable`] rather than silently
//! missing.
//!
//! ## The live index and its consistency model
//!
//! Each shard maintains a [`LiveIndex`] *incrementally* — cell postings,
//! moving-object postings, and a span-start order are updated as events
//! are accepted, never rebuilt per query (see [`crate::live_index`]).
//! A snapshot carries the union of the shard indexes **from the same
//! cut** as its visits: because the index is advanced inside the same
//! event application that extends the prefixes, an index captured at a
//! quiesce point can neither lead nor trail the visible trajectories.
//! There is no "mid-update" window a caller can observe; the
//! drain-point consistency tests pin indexed results == scan results at
//! every cut, including cuts taken between incremental drains.
//!
//! [`LiveSnapshot::candidates`] narrows a `sitm_query::Predicate` to a
//! [`CandidateSet`] exactly like `TrajectoryDb::candidates` does on the
//! warehouse side: lookups return *sound supersets* and
//! [`LiveSnapshot::matching`] / [`LiveSnapshot::count_matching`]
//! re-check the full predicate on each candidate, so indexed results are
//! always identical to the scan path ([`LiveSnapshot::matching_scan`]).
//! If a snapshot's index does not cover every visit (hand-assembled
//! snapshots, pre-index producers), candidate narrowing degrades to
//! [`CandidateSet::All`] — a full scan — rather than losing matches.
//!
//! `sitm_query::Query::explain_source` reports the access path this
//! produces: `IndexCandidates { .. }` whenever the snapshot's index
//! covers all visits **and** the predicate has an indexable leaf
//! (`VisitedCell`, `MinStayIn`, `StayOverlaps`, `SequenceContains`,
//! `SpanOverlaps`, `MovingObject`, or any `And`/`Or` over those);
//! `FullScan` otherwise.
//!
//! Federation: [`LiveSnapshot`] implements
//! [`sitm_query::TrajectorySource`] — including its index-consulting
//! `candidates`/`for_each_candidate` face — so one `sitm_query::Predicate`
//! can be evaluated over the union of several engines' live state and
//! any number of warehouse [`sitm_query::TrajectoryDb`]s via
//! `sitm_query::federated_*`, with every indexed source narrowed through
//! its own postings.

use sitm_core::{SemanticTrajectory, TimeInterval, Timestamp};
use sitm_query::{CandidateSet, Predicate, TrajId, TrajectorySource};

use crate::event::VisitKey;
use crate::live_index::LiveIndex;
use crate::shard::EmittedEpisode;

/// One open visit's queryable prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveVisit {
    /// The visit.
    pub visit: VisitKey,
    /// The trajectory observed so far (intervals accepted up to the
    /// snapshot cut).
    pub trajectory: SemanticTrajectory,
}

/// One shard's contribution to a live snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLive {
    /// Open visits with a queryable prefix, ordered by visit key.
    pub visits: Vec<LiveVisit>,
    /// Episodes finalized but not yet drained.
    pub pending: Vec<EmittedEpisode>,
    /// The shard's high-water mark.
    pub watermark: Option<Timestamp>,
    /// Open visits without a queryable prefix (retention off, no interval
    /// accepted yet, or an empty annotation set).
    pub unqueryable: usize,
    /// The shard's incremental postings at the same cut.
    pub index: LiveIndex,
}

/// A consistent cut of an engine's live state: the union of every
/// shard's open-visit prefixes and undrained episodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveSnapshot {
    /// Open visits with queryable prefixes, ordered by visit key.
    pub visits: Vec<LiveVisit>,
    /// Episodes finalized but not yet drained, in the engine's
    /// deterministic drain order.
    pub pending: Vec<EmittedEpisode>,
    /// The engine watermark at the cut (minimum across populated shards).
    pub watermark: Option<Timestamp>,
    /// Open visits that could not be queried (see [`ShardLive::unqueryable`]).
    pub unqueryable: usize,
    /// Union of the shard indexes at the cut.
    index: LiveIndex,
    /// True when every visit in `visits` is covered by `index`, which is
    /// what makes candidate narrowing sound. Hand-assembled snapshots
    /// without postings fall back to scanning.
    index_complete: bool,
    /// The persistent id map (ROADMAP follow-on): visit key → position
    /// in the sorted `visits` vector, built **once** at snapshot
    /// assembly. Candidate translation used to binary-search `visits`
    /// for every posting entry of every query; now each lookup is one
    /// O(1) probe of a map that persists for the snapshot's lifetime.
    positions: std::collections::HashMap<u64, TrajId>,
}

impl LiveSnapshot {
    /// Assembles the engine-level snapshot from per-shard cuts.
    pub fn from_shards(shards: Vec<ShardLive>) -> LiveSnapshot {
        let mut visits = Vec::new();
        let mut pending = Vec::new();
        let mut unqueryable = 0;
        let mut watermark: Option<Timestamp> = None;
        let mut index = LiveIndex::new();
        for shard in shards {
            visits.extend(shard.visits);
            pending.extend(shard.pending);
            unqueryable += shard.unqueryable;
            index.absorb(shard.index);
            watermark = match (watermark, shard.watermark) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        visits.sort_by_key(|v| v.visit);
        pending.sort_by_key(|e| e.sort_key());
        // Candidate narrowing is sound only when postings cover every
        // visit AND keys are unique: a key duplicated across merged
        // snapshots (overlapping engines, replicated feeds) would
        // binary-search to a single position and lose its twin, so such
        // merges keep the scan path.
        let duplicated = visits.windows(2).any(|w| w[0].visit == w[1].visit);
        let index_complete = !duplicated && visits.iter().all(|v| index.contains(v.visit.0));
        let positions = visits
            .iter()
            .enumerate()
            .map(|(i, v)| (v.visit.0, i as TrajId))
            .collect();
        LiveSnapshot {
            visits,
            pending,
            watermark,
            unqueryable,
            index,
            index_complete,
            positions,
        }
    }

    /// Merges snapshots from several engines (multi-site federation).
    /// Each input keeps its own cut; the merge is the plain union.
    pub fn merge(parts: impl IntoIterator<Item = LiveSnapshot>) -> LiveSnapshot {
        let shards = parts
            .into_iter()
            .map(|p| ShardLive {
                visits: p.visits,
                pending: p.pending,
                watermark: p.watermark,
                unqueryable: p.unqueryable,
                index: p.index,
            })
            .collect();
        LiveSnapshot::from_shards(shards)
    }

    /// Position of a visit key in the sorted `visits` vector — one
    /// probe of the persistent id map built at snapshot assembly (the
    /// per-query binary search this replaces was the last repeated
    /// translation cost on the live query path).
    fn position(&self, key: u64) -> Option<TrajId> {
        self.positions.get(&key).copied()
    }

    /// Translates a posting (visit keys) into snapshot positions.
    /// Unknown keys (indexed but unqueryable visits) are dropped; keys
    /// arrive in ascending order only from the key-ordered postings, so
    /// sort + dedup keeps the contract cheap and unconditional.
    fn posting(&self, keys: impl Iterator<Item = u64>) -> CandidateSet {
        let mut ids: Vec<TrajId> = keys.filter_map(|k| self.position(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        CandidateSet::Ids(ids)
    }

    /// Derives a candidate superset for `p` from the live postings —
    /// the streaming twin of `TrajectoryDb::candidates`. Soundness
    /// invariant (differentially tested): every open visit matching `p`
    /// is in the returned set; the set may contain non-matches and the
    /// caller re-filters. Returns [`CandidateSet::All`] whenever the
    /// index cannot narrow (unindexable leaves, or an index that does
    /// not cover every visit).
    pub fn candidates(&self, p: &Predicate) -> CandidateSet {
        if !self.index_complete {
            return CandidateSet::All;
        }
        self.candidates_inner(p)
    }

    fn candidates_inner(&self, p: &Predicate) -> CandidateSet {
        match p {
            Predicate::True
            | Predicate::MinTotalDwell(_)
            | Predicate::Not(_)
            | Predicate::HasTrajAnnotation(_)
            | Predicate::HasStayAnnotation(_) => CandidateSet::All,
            Predicate::VisitedCell(cell) | Predicate::MinStayIn(cell, _) => {
                self.posting(self.index.visits_in_cell(*cell))
            }
            Predicate::SequenceContains(cells) => cells
                .iter()
                .map(|c| self.posting(self.index.visits_in_cell(*c)))
                .fold(CandidateSet::All, CandidateSet::intersect),
            Predicate::SpanOverlaps(window) => {
                self.posting(self.index.visits_started_by(window.end))
            }
            Predicate::StayOverlaps(cell, window) => self
                .posting(self.index.visits_in_cell(*cell))
                .intersect(self.posting(self.index.visits_started_by(window.end))),
            Predicate::MovingObject(id) => self.posting(self.index.visits_of_object(id)),
            Predicate::And(parts) => parts
                .iter()
                .map(|q| self.candidates_inner(q))
                .fold(CandidateSet::All, CandidateSet::intersect),
            Predicate::Or(parts) => {
                if parts.is_empty() {
                    return CandidateSet::Ids(Vec::new());
                }
                let mut acc = CandidateSet::Ids(Vec::new());
                for q in parts {
                    acc = acc.union(self.candidates_inner(q));
                    if acc == CandidateSet::All {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Open visits whose prefix satisfies the predicate, served through
    /// the live index (candidates narrowed, then re-checked). Identical
    /// results, in the same visit-key order, as
    /// [`LiveSnapshot::matching_scan`].
    pub fn matching(&self, predicate: &Predicate) -> Vec<&LiveVisit> {
        match self.candidates(predicate) {
            CandidateSet::All => self.matching_scan(predicate),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .map(|id| &self.visits[id as usize])
                .filter(|v| predicate.matches(&v.trajectory))
                .collect(),
        }
    }

    /// Number of open visits whose prefix satisfies the predicate
    /// (index-narrowed; equals [`LiveSnapshot::count_matching_scan`]).
    pub fn count_matching(&self, predicate: &Predicate) -> usize {
        match self.candidates(predicate) {
            CandidateSet::All => self.count_matching_scan(predicate),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter(|&id| predicate.matches(&self.visits[id as usize].trajectory))
                .count(),
        }
    }

    /// The index-free reference: evaluates the predicate against every
    /// open prefix. Kept public as the differential baseline the
    /// indexed path is tested (and benchmarked) against.
    pub fn matching_scan(&self, predicate: &Predicate) -> Vec<&LiveVisit> {
        self.visits
            .iter()
            .filter(|v| predicate.matches(&v.trajectory))
            .collect()
    }

    /// Scan-path twin of [`LiveSnapshot::count_matching`].
    pub fn count_matching_scan(&self, predicate: &Predicate) -> usize {
        self.visits
            .iter()
            .filter(|v| predicate.matches(&v.trajectory))
            .count()
    }

    /// Undrained episodes whose time interval overlaps the window — the
    /// interval-query face of the live state. (Pending episodes are a
    /// drain buffer, not a standing population, so this stays a scan.)
    pub fn episodes_overlapping(&self, window: TimeInterval) -> Vec<&EmittedEpisode> {
        self.pending
            .iter()
            .filter(|e| e.episode.time.overlaps(window))
            .collect()
    }
}

impl TrajectorySource for LiveSnapshot {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for v in &self.visits {
            f(&v.trajectory);
        }
    }

    fn len_hint(&self) -> usize {
        self.visits.len()
    }

    fn candidates(&self, predicate: &Predicate) -> CandidateSet {
        LiveSnapshot::candidates(self, predicate)
    }

    fn for_each_candidate(&self, predicate: &Predicate, f: &mut dyn FnMut(&SemanticTrajectory)) {
        match LiveSnapshot::candidates(self, predicate) {
            CandidateSet::All => self.for_each_trajectory(f),
            CandidateSet::Ids(ids) => {
                for id in ids {
                    f(&self.visits[id as usize].trajectory);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, AnnotationSet, Episode, PresenceInterval, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn live(v: u64, c: usize, start: i64) -> LiveVisit {
        let stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(start + 10),
        );
        LiveVisit {
            visit: VisitKey(v),
            trajectory: SemanticTrajectory::new(
                format!("mo-{v}"),
                Trace::new(vec![stay]).unwrap(),
                AnnotationSet::from_iter([Annotation::goal("visit")]),
            )
            .unwrap(),
        }
    }

    /// A ShardLive whose index covers its visits (the shape engines
    /// produce).
    fn shard_live(visits: Vec<LiveVisit>, pending: Vec<EmittedEpisode>) -> ShardLive {
        let mut index = LiveIndex::new();
        for v in &visits {
            for interval in v.trajectory.trace().intervals() {
                index.observe(v.visit.0, &v.trajectory.moving_object, interval);
            }
        }
        ShardLive {
            visits,
            pending,
            watermark: None,
            unqueryable: 0,
            index,
        }
    }

    fn pending(v: u64, start: i64, end: i64) -> EmittedEpisode {
        EmittedEpisode {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            predicate: 0,
            episode: Episode {
                range: 0..1,
                time: TimeInterval::new(Timestamp(start), Timestamp(end)),
                annotations: AnnotationSet::from_iter([Annotation::goal("ep")]),
            },
        }
    }

    #[test]
    fn from_shards_merges_sorts_and_takes_min_watermark() {
        let snapshot = LiveSnapshot::from_shards(vec![
            ShardLive {
                watermark: Some(Timestamp(40)),
                unqueryable: 1,
                ..shard_live(vec![live(5, 1, 0)], vec![pending(5, 20, 30)])
            },
            ShardLive {
                watermark: Some(Timestamp(25)),
                ..shard_live(vec![live(2, 2, 0)], vec![pending(2, 0, 10)])
            },
            shard_live(vec![], vec![]),
        ]);
        assert_eq!(snapshot.visits.len(), 2);
        assert_eq!(snapshot.visits[0].visit, VisitKey(2), "sorted by key");
        assert_eq!(snapshot.pending[0].visit, VisitKey(2), "drain order");
        assert_eq!(snapshot.watermark, Some(Timestamp(25)), "min across Some");
        assert_eq!(snapshot.unqueryable, 1);
        assert!(snapshot.index_complete, "shards carried their postings");
    }

    #[test]
    fn predicate_and_interval_faces() {
        let snapshot = LiveSnapshot::from_shards(vec![shard_live(
            vec![live(1, 1, 0), live(2, 2, 0)],
            vec![pending(1, 0, 10), pending(2, 50, 60)],
        )]);
        let p = Predicate::VisitedCell(cell(1));
        assert_eq!(snapshot.count_matching(&p), 1);
        assert_eq!(snapshot.matching(&p)[0].visit, VisitKey(1));
        let window = TimeInterval::new(Timestamp(5), Timestamp(20));
        let eps = snapshot.episodes_overlapping(window);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].visit, VisitKey(1));
    }

    #[test]
    fn indexed_candidates_narrow_and_match_the_scan_path() {
        let snapshot = LiveSnapshot::from_shards(vec![shard_live(
            vec![live(1, 1, 0), live(2, 2, 100), live(3, 1, 200)],
            vec![],
        )]);
        let predicates = [
            Predicate::VisitedCell(cell(1)),
            Predicate::MovingObject("mo-2".into()),
            Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(50))),
            Predicate::StayOverlaps(cell(1), TimeInterval::new(Timestamp(150), Timestamp(400))),
            Predicate::VisitedCell(cell(1)).and(Predicate::MovingObject("mo-3".into())),
            Predicate::VisitedCell(cell(2)).or(Predicate::MovingObject("mo-1".into())),
            Predicate::SequenceContains(vec![cell(1)]),
            Predicate::True,
        ];
        for p in predicates {
            let indexed: Vec<u64> = snapshot.matching(&p).iter().map(|v| v.visit.0).collect();
            let scanned: Vec<u64> = snapshot
                .matching_scan(&p)
                .iter()
                .map(|v| v.visit.0)
                .collect();
            assert_eq!(indexed, scanned, "indexed != scan for {p}");
            assert_eq!(
                snapshot.count_matching(&p),
                snapshot.count_matching_scan(&p),
                "count diverged for {p}"
            );
        }
        // The narrowing is real: a cell posting beats All.
        match snapshot.candidates(&Predicate::VisitedCell(cell(2))) {
            CandidateSet::Ids(ids) => assert_eq!(ids, vec![1], "position of visit 2"),
            CandidateSet::All => panic!("cell predicate must narrow"),
        }
        // Span narrowing: only visit 1 starts by t=50.
        match snapshot.candidates(&Predicate::SpanOverlaps(TimeInterval::new(
            Timestamp(0),
            Timestamp(50),
        ))) {
            CandidateSet::Ids(ids) => assert_eq!(ids, vec![0]),
            CandidateSet::All => panic!("span predicate must narrow"),
        }
    }

    #[test]
    fn incomplete_index_falls_back_to_scanning() {
        // A hand-assembled shard cut without postings: narrowing would
        // lose matches, so candidates must degrade to All.
        let snapshot = LiveSnapshot::from_shards(vec![ShardLive {
            visits: vec![live(1, 1, 0)],
            pending: vec![],
            watermark: None,
            unqueryable: 0,
            index: LiveIndex::new(),
        }]);
        assert!(!snapshot.index_complete);
        assert_eq!(
            snapshot.candidates(&Predicate::VisitedCell(cell(1))),
            CandidateSet::All
        );
        assert_eq!(snapshot.count_matching(&Predicate::VisitedCell(cell(1))), 1);
    }

    #[test]
    fn overlapping_merges_fall_back_to_scanning_and_lose_nothing() {
        // The same visit key in two merged snapshots (replicated feeds,
        // overlapping engines): a duplicated key cannot be narrowed
        // soundly, so the merge must disable the index path — and the
        // indexed entry points must still count both copies.
        let a = LiveSnapshot::from_shards(vec![shard_live(vec![live(1, 1, 0)], vec![])]);
        let b =
            LiveSnapshot::from_shards(vec![shard_live(vec![live(1, 1, 0), live(2, 2, 0)], vec![])]);
        let merged = LiveSnapshot::merge([a, b]);
        assert_eq!(merged.visits.len(), 3);
        assert!(
            !merged.index_complete,
            "duplicated keys force the scan path"
        );
        let p = Predicate::VisitedCell(cell(1));
        assert_eq!(merged.candidates(&p), CandidateSet::All);
        assert_eq!(merged.count_matching(&p), 2, "both copies visible");
        assert_eq!(merged.count_matching(&p), merged.count_matching_scan(&p));
    }

    #[test]
    fn merge_unions_engine_snapshots_and_source_walks_all() {
        let a = LiveSnapshot::from_shards(vec![ShardLive {
            watermark: Some(Timestamp(10)),
            ..shard_live(vec![live(1, 1, 0)], vec![])
        }]);
        let b = LiveSnapshot::from_shards(vec![ShardLive {
            unqueryable: 2,
            ..shard_live(vec![live(2, 1, 0)], vec![])
        }]);
        let merged = LiveSnapshot::merge([a, b]);
        assert_eq!(merged.visits.len(), 2);
        assert_eq!(merged.unqueryable, 2);
        assert_eq!(merged.watermark, Some(Timestamp(10)));
        assert!(merged.index_complete, "merge carries the postings along");
        assert_eq!(
            sitm_query::federated_count(&Predicate::VisitedCell(cell(1)), &[&merged]),
            2
        );
        assert_eq!(merged.len_hint(), 2);
    }
}
