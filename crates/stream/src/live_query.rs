//! Live queries over in-flight shard state.
//!
//! The batch query stack (`sitm-query`) sees trajectories only after
//! their visits close and drain. This module makes the *live* state
//! visible too: every open visit's trajectory prefix plus every episode
//! that is finalized but not yet drained — the moving-object meta-model's
//! "spatio-temporal predicates over live trajectories" served straight
//! from the engine.
//!
//! ## Snapshot consistency
//!
//! A [`LiveSnapshot`] is a *consistent cut*: both engines produce it by
//! flushing, then capturing every shard's state at one point in the
//! command order, so an event is either entirely visible (its effects on
//! the prefix, the open runs, and the pending episodes all present) or
//! entirely absent. For [`crate::ParallelEngine`] the cut is the position
//! of the snapshot request in each shard's channel: every event ingested
//! before the request is included, everything after is excluded — the
//! same contract the sequential engine gets from its in-line flush.
//! Draining at the same cut (`drain` right after `live_snapshot`) yields
//! exactly the snapshot's `pending` set.
//!
//! Prefix visibility requires interval retention
//! ([`crate::EngineConfig::with_live_queries`]); without it, open visits
//! are counted in [`LiveSnapshot::unqueryable`] rather than silently
//! missing.
//!
//! Federation: [`LiveSnapshot`] implements
//! [`sitm_query::TrajectorySource`], so one `sitm_query::Predicate` can
//! be evaluated over the union of several engines' live state and any
//! number of warehouse [`sitm_query::TrajectoryDb`]s via
//! `sitm_query::federated_*`.

use sitm_core::{SemanticTrajectory, TimeInterval, Timestamp};
use sitm_query::{Predicate, TrajectorySource};

use crate::event::VisitKey;
use crate::shard::EmittedEpisode;

/// One open visit's queryable prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveVisit {
    /// The visit.
    pub visit: VisitKey,
    /// The trajectory observed so far (intervals accepted up to the
    /// snapshot cut).
    pub trajectory: SemanticTrajectory,
}

/// One shard's contribution to a live snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLive {
    /// Open visits with a queryable prefix, ordered by visit key.
    pub visits: Vec<LiveVisit>,
    /// Episodes finalized but not yet drained.
    pub pending: Vec<EmittedEpisode>,
    /// The shard's high-water mark.
    pub watermark: Option<Timestamp>,
    /// Open visits without a queryable prefix (retention off, no interval
    /// accepted yet, or an empty annotation set).
    pub unqueryable: usize,
}

/// A consistent cut of an engine's live state: the union of every
/// shard's open-visit prefixes and undrained episodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveSnapshot {
    /// Open visits with queryable prefixes, ordered by visit key.
    pub visits: Vec<LiveVisit>,
    /// Episodes finalized but not yet drained, in the engine's
    /// deterministic drain order.
    pub pending: Vec<EmittedEpisode>,
    /// The engine watermark at the cut (minimum across populated shards).
    pub watermark: Option<Timestamp>,
    /// Open visits that could not be queried (see [`ShardLive::unqueryable`]).
    pub unqueryable: usize,
}

impl LiveSnapshot {
    /// Assembles the engine-level snapshot from per-shard cuts.
    pub fn from_shards(shards: Vec<ShardLive>) -> LiveSnapshot {
        let mut visits = Vec::new();
        let mut pending = Vec::new();
        let mut unqueryable = 0;
        let mut watermark: Option<Timestamp> = None;
        for shard in shards {
            visits.extend(shard.visits);
            pending.extend(shard.pending);
            unqueryable += shard.unqueryable;
            watermark = match (watermark, shard.watermark) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        visits.sort_by_key(|v| v.visit);
        pending.sort_by_key(|e| e.sort_key());
        LiveSnapshot {
            visits,
            pending,
            watermark,
            unqueryable,
        }
    }

    /// Merges snapshots from several engines (multi-site federation).
    /// Each input keeps its own cut; the merge is the plain union.
    pub fn merge(parts: impl IntoIterator<Item = LiveSnapshot>) -> LiveSnapshot {
        let shards = parts
            .into_iter()
            .map(|p| ShardLive {
                visits: p.visits,
                pending: p.pending,
                watermark: p.watermark,
                unqueryable: p.unqueryable,
            })
            .collect();
        LiveSnapshot::from_shards(shards)
    }

    /// Open visits whose prefix satisfies the predicate.
    pub fn matching(&self, predicate: &Predicate) -> Vec<&LiveVisit> {
        self.visits
            .iter()
            .filter(|v| predicate.matches(&v.trajectory))
            .collect()
    }

    /// Number of open visits whose prefix satisfies the predicate.
    pub fn count_matching(&self, predicate: &Predicate) -> usize {
        self.visits
            .iter()
            .filter(|v| predicate.matches(&v.trajectory))
            .count()
    }

    /// Undrained episodes whose time interval overlaps the window — the
    /// interval-query face of the live state.
    pub fn episodes_overlapping(&self, window: TimeInterval) -> Vec<&EmittedEpisode> {
        self.pending
            .iter()
            .filter(|e| e.episode.time.overlaps(window))
            .collect()
    }
}

impl TrajectorySource for LiveSnapshot {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for v in &self.visits {
            f(&v.trajectory);
        }
    }

    fn len_hint(&self) -> usize {
        self.visits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, AnnotationSet, Episode, PresenceInterval, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn live(v: u64, c: usize, start: i64) -> LiveVisit {
        let stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(start + 10),
        );
        LiveVisit {
            visit: VisitKey(v),
            trajectory: SemanticTrajectory::new(
                format!("mo-{v}"),
                Trace::new(vec![stay]).unwrap(),
                AnnotationSet::from_iter([Annotation::goal("visit")]),
            )
            .unwrap(),
        }
    }

    fn pending(v: u64, start: i64, end: i64) -> EmittedEpisode {
        EmittedEpisode {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            predicate: 0,
            episode: Episode {
                range: 0..1,
                time: TimeInterval::new(Timestamp(start), Timestamp(end)),
                annotations: AnnotationSet::from_iter([Annotation::goal("ep")]),
            },
        }
    }

    #[test]
    fn from_shards_merges_sorts_and_takes_min_watermark() {
        let snapshot = LiveSnapshot::from_shards(vec![
            ShardLive {
                visits: vec![live(5, 1, 0)],
                pending: vec![pending(5, 20, 30)],
                watermark: Some(Timestamp(40)),
                unqueryable: 1,
            },
            ShardLive {
                visits: vec![live(2, 2, 0)],
                pending: vec![pending(2, 0, 10)],
                watermark: Some(Timestamp(25)),
                unqueryable: 0,
            },
            ShardLive {
                visits: vec![],
                pending: vec![],
                watermark: None,
                unqueryable: 0,
            },
        ]);
        assert_eq!(snapshot.visits.len(), 2);
        assert_eq!(snapshot.visits[0].visit, VisitKey(2), "sorted by key");
        assert_eq!(snapshot.pending[0].visit, VisitKey(2), "drain order");
        assert_eq!(snapshot.watermark, Some(Timestamp(25)), "min across Some");
        assert_eq!(snapshot.unqueryable, 1);
    }

    #[test]
    fn predicate_and_interval_faces() {
        let snapshot = LiveSnapshot::from_shards(vec![ShardLive {
            visits: vec![live(1, 1, 0), live(2, 2, 0)],
            pending: vec![pending(1, 0, 10), pending(2, 50, 60)],
            watermark: Some(Timestamp(60)),
            unqueryable: 0,
        }]);
        let p = Predicate::VisitedCell(cell(1));
        assert_eq!(snapshot.count_matching(&p), 1);
        assert_eq!(snapshot.matching(&p)[0].visit, VisitKey(1));
        let window = TimeInterval::new(Timestamp(5), Timestamp(20));
        let eps = snapshot.episodes_overlapping(window);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].visit, VisitKey(1));
    }

    #[test]
    fn merge_unions_engine_snapshots_and_source_walks_all() {
        let a = LiveSnapshot::from_shards(vec![ShardLive {
            visits: vec![live(1, 1, 0)],
            pending: vec![],
            watermark: Some(Timestamp(10)),
            unqueryable: 0,
        }]);
        let b = LiveSnapshot::from_shards(vec![ShardLive {
            visits: vec![live(2, 1, 0)],
            pending: vec![],
            watermark: None,
            unqueryable: 2,
        }]);
        let merged = LiveSnapshot::merge([a, b]);
        assert_eq!(merged.visits.len(), 2);
        assert_eq!(merged.unqueryable, 2);
        assert_eq!(merged.watermark, Some(Timestamp(10)));
        assert_eq!(
            sitm_query::federated_count(&Predicate::VisitedCell(cell(1)), &[&merged]),
            2
        );
        assert_eq!(merged.len_hint(), 2);
    }
}
