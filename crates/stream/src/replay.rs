//! Streaming source over the calibrated Louvre dataset.
//!
//! Turns `sitm_louvre::generate_dataset` output into the single
//! timestamp-ordered event feed a live deployment would see: visits open,
//! their detections arrive as presence events interleaved across every
//! concurrent visitor in the museum, and visits close — thousands of
//! overlapping trajectories multiplexed on one stream.
//!
//! Conversion reuses [`Dataset::to_trajectory`], so the intervals the
//! engine ingests are byte-for-byte the intervals the batch pipeline
//! segments — including NRG-resolved entering transitions. That makes
//! replay the ground truth for the batch-equivalence property tests.

use sitm_core::SemanticTrajectory;
use sitm_louvre::{Dataset, LouvreModel};

use crate::event::{sort_feed, StreamEvent, VisitKey};

/// The batch-side view: every convertible visit as `(key, trajectory)`,
/// keyed the same way [`dataset_events`] keys its events.
pub fn visit_trajectories(
    model: &LouvreModel,
    dataset: &Dataset,
) -> Vec<(VisitKey, SemanticTrajectory)> {
    dataset
        .visits
        .iter()
        .filter_map(|visit| {
            let trajectory = dataset.to_trajectory(model, visit)?;
            Some((VisitKey(visit.visit_id as u64), trajectory))
        })
        .collect()
}

/// The stream-side view: one event feed over the whole dataset, ordered
/// by time (ties broken causally: opens, then observations, then closes).
/// Visits that cannot be converted (unknown zone, empty detection list)
/// are skipped, mirroring the batch path.
pub fn dataset_events(model: &LouvreModel, dataset: &Dataset) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for (key, trajectory) in visit_trajectories(model, dataset) {
        events.push(StreamEvent::VisitOpened {
            visit: key,
            moving_object: trajectory.moving_object.clone(),
            annotations: trajectory.annotations().clone(),
            at: trajectory.start(),
        });
        for interval in trajectory.trace().intervals() {
            events.push(StreamEvent::Presence {
                visit: key,
                interval: interval.clone(),
            });
        }
        events.push(StreamEvent::VisitClosed {
            visit: key,
            at: trajectory.end(),
        });
    }
    sort_feed(&mut events);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_louvre::{build_louvre, generate_dataset, GeneratorConfig, PaperCalibration};

    fn small_dataset() -> Dataset {
        let cal = PaperCalibration {
            visits: 40,
            visitors: 30,
            returning_visitors: 10,
            revisits: 10,
            detections: 160,
            transitions: 120,
            ..PaperCalibration::default()
        };
        generate_dataset(&GeneratorConfig {
            seed: 11,
            calibration: cal,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn feed_is_time_ordered_and_complete() {
        let model = build_louvre();
        let ds = small_dataset();
        let events = dataset_events(&model, &ds);
        let trajectories = visit_trajectories(&model, &ds);
        let presences = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Presence { .. }))
            .count();
        let total_intervals: usize = trajectories.iter().map(|(_, t)| t.trace().len()).sum();
        assert_eq!(presences, total_intervals);
        let opens = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::VisitOpened { .. }))
            .count();
        assert_eq!(opens, trajectories.len());
        for pair in events.windows(2) {
            assert!(
                (pair[0].time(), pair[0].rank(), pair[0].visit())
                    <= (pair[1].time(), pair[1].rank(), pair[1].visit()),
                "feed out of order"
            );
        }
    }

    #[test]
    fn per_visit_event_order_is_open_observe_close() {
        let model = build_louvre();
        let ds = small_dataset();
        let events = dataset_events(&model, &ds);
        let some_key = events
            .iter()
            .find_map(|e| match e {
                StreamEvent::VisitOpened { visit, .. } => Some(*visit),
                _ => None,
            })
            .expect("at least one visit");
        let of_visit: Vec<&StreamEvent> = events.iter().filter(|e| e.visit() == some_key).collect();
        assert!(matches!(of_visit[0], StreamEvent::VisitOpened { .. }));
        assert!(matches!(
            of_visit[of_visit.len() - 1],
            StreamEvent::VisitClosed { .. }
        ));
        assert!(of_visit[1..of_visit.len() - 1]
            .iter()
            .all(|e| matches!(e, StreamEvent::Presence { .. })));
    }

    #[test]
    fn feed_is_deterministic() {
        let model = build_louvre();
        let ds = small_dataset();
        assert_eq!(dataset_events(&model, &ds), dataset_events(&model, &ds));
    }
}
