//! Online postings over the open-visit population of one shard.
//!
//! The warehouse side of the query stack answers predicates through
//! `sitm_query::TrajectoryDb`'s inverted indexes; before this module the
//! live side answered them by scanning every retained prefix. A
//! [`LiveIndex`] closes that gap: each shard (and the work-stealing
//! engine's shared scheduler) maintains three posting structures
//! *incrementally*, updated as events are accepted rather than rebuilt
//! per query:
//!
//! * **cell postings** — cell → open visits with at least one accepted
//!   stay there (serves `VisitedCell`, `MinStayIn`, `StayOverlaps`, and
//!   each leg of `SequenceContains`);
//! * **moving-object postings** — `IDmo` → open visits (serves
//!   `MovingObject`);
//! * **span starts** — a start-time-ordered set over each open visit's
//!   first accepted interval (serves `SpanOverlaps`: an open prefix's
//!   span can only *grow at the right edge*, so `span.start ≤ w.end` is
//!   the one index-answerable half of the overlap test; the other half
//!   is left to the residual re-check).
//!
//! Maintenance is O(log n) per accepted interval (and only on *new*
//! cells of a visit — re-entering a cell is a no-op), O(cells-of-visit ·
//! log n) on close. Like the warehouse indexes, lookups promise
//! **soundness, not completeness-in-themselves**: every matching visit
//! is in the returned posting, and the caller re-checks the full
//! predicate on each candidate.
//!
//! The index only tracks visits whose intervals are retained
//! ([`crate::EngineConfig::with_live_queries`]); with retention off
//! there is nothing queryable to index and every structure stays empty.

use std::collections::{BTreeMap, BTreeSet};

use sitm_core::{PresenceInterval, Timestamp};
use sitm_space::CellRef;

/// Reverse record for one indexed visit, kept so close-time removal is
/// proportional to the visit's footprint, not the index size.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexedVisit {
    /// Moving-object identifier at index time.
    object: String,
    /// Start of the first accepted interval (the open span's left edge).
    start: Timestamp,
    /// Distinct cells visited, in first-visited order.
    cells: Vec<CellRef>,
}

/// Incrementally maintained postings over open visits (see the module
/// docs for the structures and their soundness contract).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveIndex {
    cells: BTreeMap<CellRef, BTreeSet<u64>>,
    objects: BTreeMap<String, BTreeSet<u64>>,
    starts: BTreeSet<(Timestamp, u64)>,
    entries: BTreeMap<u64, IndexedVisit>,
}

impl LiveIndex {
    /// An empty index.
    pub fn new() -> LiveIndex {
        LiveIndex::default()
    }

    /// Records one accepted presence interval for an open visit. The
    /// first observation of a visit registers its moving object and its
    /// span start; later ones only extend the cell postings when the
    /// visit enters a cell it has not been seen in yet.
    pub fn observe(&mut self, visit: u64, object: &str, interval: &PresenceInterval) {
        if !self.entries.contains_key(&visit) {
            self.objects
                .entry(object.to_string())
                .or_default()
                .insert(visit);
            self.starts.insert((interval.start(), visit));
            self.entries.insert(
                visit,
                IndexedVisit {
                    object: object.to_string(),
                    start: interval.start(),
                    cells: Vec::new(),
                },
            );
        }
        let entry = self.entries.get_mut(&visit).expect("just ensured");
        if !entry.cells.contains(&interval.cell) {
            entry.cells.push(interval.cell);
            self.cells.entry(interval.cell).or_default().insert(visit);
        }
    }

    /// Unindexes a visit (it closed, or its state was dropped). Unknown
    /// visits are a no-op.
    pub fn remove(&mut self, visit: u64) {
        let Some(entry) = self.entries.remove(&visit) else {
            return;
        };
        if let Some(set) = self.objects.get_mut(&entry.object) {
            set.remove(&visit);
            if set.is_empty() {
                self.objects.remove(&entry.object);
            }
        }
        self.starts.remove(&(entry.start, visit));
        for cell in entry.cells {
            if let Some(set) = self.cells.get_mut(&cell) {
                set.remove(&visit);
                if set.is_empty() {
                    self.cells.remove(&cell);
                }
            }
        }
    }

    /// Folds another index in (postings union), consuming it — an empty
    /// receiver adopts the donor wholesale, so the common
    /// one-index-per-engine merge is a move, not a rebuild. Visit
    /// populations are expected to be disjoint (each visit lives on one
    /// shard).
    pub fn absorb(&mut self, other: LiveIndex) {
        if self.entries.is_empty() {
            *self = other;
            return;
        }
        for (visit, entry) in other.entries {
            self.objects
                .entry(entry.object.clone())
                .or_default()
                .insert(visit);
            self.starts.insert((entry.start, visit));
            for cell in &entry.cells {
                self.cells.entry(*cell).or_default().insert(visit);
            }
            self.entries.insert(visit, entry);
        }
    }

    /// Number of indexed visits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the visit is indexed.
    pub fn contains(&self, visit: u64) -> bool {
        self.entries.contains_key(&visit)
    }

    /// Open visits with at least one accepted stay in `cell`.
    pub fn visits_in_cell(&self, cell: CellRef) -> impl Iterator<Item = u64> + '_ {
        self.cells
            .get(&cell)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Open visits of the moving object.
    pub fn visits_of_object(&self, object: &str) -> impl Iterator<Item = u64> + '_ {
        self.objects
            .get(object)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Open visits whose span starts at or before `bound` — a sound
    /// superset of the visits whose span overlaps any window ending at
    /// `bound` (open spans grow only to the right).
    pub fn visits_started_by(&self, bound: Timestamp) -> impl Iterator<Item = u64> + '_ {
        self.starts
            .range(..=(bound, u64::MAX))
            .map(|&(_, visit)| visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::TransitionTaken;
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    #[test]
    fn observe_builds_all_three_postings() {
        let mut index = LiveIndex::new();
        index.observe(7, "mo-7", &stay(1, 10, 20));
        index.observe(7, "mo-7", &stay(2, 20, 30));
        index.observe(7, "mo-7", &stay(1, 30, 40)); // re-entry: no-op
        index.observe(9, "mo-9", &stay(1, 5, 15));
        assert_eq!(index.len(), 2);
        assert!(index.contains(7) && index.contains(9));
        let mut in_one: Vec<u64> = index.visits_in_cell(cell(1)).collect();
        in_one.sort_unstable();
        assert_eq!(in_one, vec![7, 9]);
        assert_eq!(index.visits_in_cell(cell(2)).collect::<Vec<_>>(), vec![7]);
        assert!(index.visits_in_cell(cell(3)).next().is_none());
        assert_eq!(index.visits_of_object("mo-9").collect::<Vec<_>>(), vec![9]);
        // Span starts: 9 starts at 5, 7 at 10.
        assert_eq!(
            index.visits_started_by(Timestamp(5)).collect::<Vec<_>>(),
            vec![9]
        );
        assert_eq!(index.visits_started_by(Timestamp(10)).count(), 2);
        assert_eq!(index.visits_started_by(Timestamp(4)).count(), 0);
    }

    #[test]
    fn remove_cleans_every_posting() {
        let mut index = LiveIndex::new();
        index.observe(1, "a", &stay(1, 0, 10));
        index.observe(1, "a", &stay(2, 10, 20));
        index.observe(2, "a", &stay(1, 3, 9));
        index.remove(1);
        assert!(!index.contains(1));
        assert_eq!(index.visits_in_cell(cell(1)).collect::<Vec<_>>(), vec![2]);
        assert!(index.visits_in_cell(cell(2)).next().is_none());
        assert_eq!(index.visits_of_object("a").collect::<Vec<_>>(), vec![2]);
        assert_eq!(index.visits_started_by(Timestamp(100)).count(), 1);
        index.remove(2);
        assert!(index.is_empty());
        index.remove(2); // idempotent
        assert!(index.is_empty());
    }

    #[test]
    fn absorb_unions_disjoint_shard_indexes() {
        let mut a = LiveIndex::new();
        a.observe(1, "a", &stay(1, 0, 10));
        let mut b = LiveIndex::new();
        b.observe(2, "b", &stay(1, 5, 15));
        b.observe(3, "a", &stay(2, 7, 9));
        a.absorb(b);
        assert_eq!(a.len(), 3);
        let mut in_one: Vec<u64> = a.visits_in_cell(cell(1)).collect();
        in_one.sort_unstable();
        assert_eq!(in_one, vec![1, 2]);
        let mut of_a: Vec<u64> = a.visits_of_object("a").collect();
        of_a.sort_unstable();
        assert_eq!(of_a, vec![1, 3]);
    }
}
