//! Online episodic segmentation of a single visit.
//!
//! [`IncrementalSegmenter`] maintains one [`RunBuilder`] per configured
//! `(predicate, label)` pair and feeds each arriving presence interval
//! through every predicate. An episode is emitted the instant its maximal
//! run is closed by a non-matching interval (or by visit end) — exactly
//! when the batch extractor would have produced it, because both sit on
//! the same `RunBuilder`.
//!
//! Def. 3.4 condition (2) (`A'_traj ≠ A_traj`) is honoured per visit: a
//! predicate whose label equals the visit's own annotation set is
//! *suppressed* for that visit (the batch path refuses the whole call
//! with `TrajectoryError::NotProper`; a stream cannot refuse one visit's
//! worth of an infinite stream, so it skips and counts the anomaly).

use sitm_core::{AnnotationSet, Episode, IntervalPredicate, OpenRun, PresenceInterval, RunBuilder};

/// Serializable segmenter state (everything but the predicates, which are
/// code and must be re-supplied on restore).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmenterSnapshot {
    /// Tuples consumed so far (the next interval's trace index).
    pub index: usize,
    /// Per-predicate open runs.
    pub open_runs: Vec<Option<OpenRun>>,
    /// Per-predicate suppression (label equal to the visit's `A_traj`).
    pub suppressed: Vec<bool>,
}

/// Predicate-driven episode detection over one visit's interval stream.
#[derive(Debug)]
pub struct IncrementalSegmenter {
    builders: Vec<RunBuilder>,
    suppressed: Vec<bool>,
    index: usize,
}

impl IncrementalSegmenter {
    /// A segmenter for a visit annotated with `trajectory_annotations`,
    /// detecting episodes for every pair in `predicates`.
    pub fn new(
        predicates: &[(IntervalPredicate, AnnotationSet)],
        trajectory_annotations: &AnnotationSet,
    ) -> Self {
        IncrementalSegmenter {
            builders: predicates
                .iter()
                .map(|(_, label)| RunBuilder::new(label.clone()))
                .collect(),
            suppressed: predicates
                .iter()
                .map(|(_, label)| label == trajectory_annotations)
                .collect(),
            index: 0,
        }
    }

    /// Number of predicates whose label collides with the visit's own
    /// annotations (each is a per-visit Def. 3.4(2) violation).
    pub fn suppressed_count(&self) -> usize {
        self.suppressed.iter().filter(|&&s| s).count()
    }

    /// Tuples consumed so far.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Feeds the next presence interval; pushes `(predicate_index,
    /// episode)` for every run this interval closes.
    pub fn observe(
        &mut self,
        predicates: &[(IntervalPredicate, AnnotationSet)],
        interval: &PresenceInterval,
        out: &mut Vec<(usize, Episode)>,
    ) {
        debug_assert_eq!(predicates.len(), self.builders.len());
        let index = self.index;
        self.index += 1;
        for (p, builder) in self.builders.iter_mut().enumerate() {
            if self.suppressed[p] {
                continue;
            }
            let matches = predicates[p].0.eval(interval);
            if let Some(episode) = builder.observe(index, interval, matches) {
                out.push((p, episode));
            }
        }
    }

    /// Ends the visit: closes every open run.
    pub fn finish(&mut self, out: &mut Vec<(usize, Episode)>) {
        for (p, builder) in self.builders.iter_mut().enumerate() {
            if self.suppressed[p] {
                continue;
            }
            if let Some(episode) = builder.close(self.index) {
                out.push((p, episode));
            }
        }
    }

    /// Captures checkpointable state.
    pub fn snapshot(&self) -> SegmenterSnapshot {
        SegmenterSnapshot {
            index: self.index,
            open_runs: self
                .builders
                .iter()
                .map(|b| b.open_run().cloned())
                .collect(),
            suppressed: self.suppressed.clone(),
        }
    }

    /// Rebuilds a segmenter from a snapshot taken against the same
    /// predicate table (labels are re-derived from `predicates`).
    pub fn restore(
        predicates: &[(IntervalPredicate, AnnotationSet)],
        snapshot: SegmenterSnapshot,
    ) -> Self {
        let mut builders: Vec<RunBuilder> = predicates
            .iter()
            .map(|(_, label)| RunBuilder::new(label.clone()))
            .collect();
        for (builder, run) in builders.iter_mut().zip(snapshot.open_runs) {
            builder.restore_run(run);
        }
        IncrementalSegmenter {
            builders,
            suppressed: snapshot.suppressed,
            index: snapshot.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, Timestamp, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn predicates() -> Vec<(IntervalPredicate, AnnotationSet)> {
        vec![
            (IntervalPredicate::in_cells([cell(1), cell(2)]), label("in")),
            (
                IntervalPredicate::in_cells([cell(1), cell(2)]).not(),
                label("out"),
            ),
        ]
    }

    #[test]
    fn emits_on_run_close_and_finish() {
        let preds = predicates();
        let mut seg = IncrementalSegmenter::new(&preds, &label("visit"));
        let mut out = Vec::new();
        // Cells 0 1 2 0: predicate 0 runs over tuples 1..3, predicate 1
        // over 0..1 and 3..4.
        seg.observe(&preds, &stay(0, 0, 10), &mut out);
        assert!(out.is_empty(), "nothing closed yet");
        seg.observe(&preds, &stay(1, 10, 20), &mut out);
        assert_eq!(out.len(), 1, "'out' run 0..1 closed by tuple 1");
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1.range, 0..1);
        seg.observe(&preds, &stay(2, 20, 30), &mut out);
        seg.observe(&preds, &stay(0, 30, 40), &mut out);
        assert_eq!(out.len(), 2, "'in' run 1..3 closed by tuple 3");
        assert_eq!(out[1].0, 0);
        assert_eq!(out[1].1.range, 1..3);
        seg.finish(&mut out);
        assert_eq!(out.len(), 3, "trailing 'out' run closed at finish");
        assert_eq!(out[2].1.range, 3..4);
    }

    #[test]
    fn suppresses_label_equal_to_trajectory_annotations() {
        let preds = vec![(IntervalPredicate::any(), label("visit"))];
        let mut seg = IncrementalSegmenter::new(&preds, &label("visit"));
        assert_eq!(seg.suppressed_count(), 1);
        let mut out = Vec::new();
        seg.observe(&preds, &stay(0, 0, 10), &mut out);
        seg.finish(&mut out);
        assert!(out.is_empty(), "NotProper predicate never emits");
    }

    #[test]
    fn snapshot_restore_resumes_mid_run() {
        let preds = predicates();
        let mut seg = IncrementalSegmenter::new(&preds, &label("visit"));
        let mut out = Vec::new();
        seg.observe(&preds, &stay(1, 0, 10), &mut out);
        let snapshot = seg.snapshot();
        assert_eq!(snapshot.index, 1);

        let mut resumed = IncrementalSegmenter::restore(&preds, snapshot);
        resumed.observe(&preds, &stay(2, 10, 20), &mut out);
        resumed.finish(&mut out);
        let in_eps: Vec<_> = out.iter().filter(|(p, _)| *p == 0).collect();
        assert_eq!(in_eps.len(), 1);
        assert_eq!(in_eps[0].1.range, 0..2, "run spans the checkpoint");
        assert_eq!(in_eps[0].1.time.start, Timestamp(0));
        assert_eq!(in_eps[0].1.time.end, Timestamp(20));
    }
}
