//! The work-stealing parallel runtime.
//!
//! [`ParallelEngine`] runs N worker threads over a shared scheduler of
//! **visits**, not static hash partitions. Events queue per visit;
//! ready visits sit in bounded per-worker deques; a worker that runs
//! dry *steals a whole cold visit* from the back of the busiest other
//! deque. This replaces the previous thread-per-shard channel router,
//! whose static `hash(visit) → worker` placement collapsed to
//! single-worker throughput whenever one shard went hot (the
//! single-hot-shard skew case the differential tests pin down).
//!
//! ## Why stealing cannot reorder anything
//!
//! Correctness rests on **visit-affinity pinning**: a visit's events
//! live in that visit's own FIFO queue, the visit appears in at most
//! one deque at a time, and it is *held* by at most one worker while
//! its queued events are applied. Stealing moves whole **cold** visits
//! — visits that are queued but not held, so none of their events are
//! mid-application anywhere. A visit's history is therefore applied in
//! arrival order by a single worker at a time, which is exactly the
//! per-visit ordering guarantee the sequential engine provides; thread
//! interleavings remain invisible in the output (property-tested in
//! `tests/parallel_equivalence.rs` for 1/2/4/8 workers, shuffled feeds,
//! skewed feeds, and crash/restore mid-stream).
//!
//! ## Design
//!
//! * **Routing** — the caller's thread buffers events and pushes them
//!   to the scheduler one batch ([`EngineConfig::batch_capacity`]) per
//!   lock acquisition; a newly ready visit lands on its *home* worker's
//!   deque (initially `hash(visit)`, migrating with each steal).
//! * **Backpressure** — total queued events are bounded at
//!   `channel_depth × batch_capacity × workers`; a producer outrunning
//!   the workers blocks instead of ballooning memory.
//! * **Sharded deposits** — what a slice *produces* (counters, drained
//!   episodes, finished trajectories, watermark advances) lands in the
//!   depositing worker's own `Deposit` behind its own lock, and
//!   live-index maintenance rides a dedicated index lock; the scheduler
//!   mutex guards only *routing* state (visit cells, deques, fences).
//!   Workers therefore contend on the scheduler lock only to acquire
//!   and release visits, never to record results — the deposit path
//!   that used to serialize every worker through the one big mutex
//!   (ROADMAP perf follow-on from the work-stealing rewrite). Barriers
//!   merge the per-worker deposits after quiescing; merge order is
//!   worker index, and every consumer sorts by a deterministic global
//!   key, so the sharding is invisible in the output.
//! * **Barriers** — `flush`/`drain`/`take_finished`/`finish`/
//!   `checkpoint`/`live_snapshot`/`stats` quiesce: they push the router
//!   buffer, then wait until every queued event is applied and
//!   deposited. A barrier therefore reflects exactly the events
//!   ingested before the call — the same consistent cut the sequential
//!   engine gets from its in-line flush (see [`crate::live_query`]).
//! * **Sequential-equivalent accounting** — watermarks are still kept
//!   per *hash shard* (the `config.shards` partitions the sequential
//!   engine would use), so `watermark()` and checkpoint frames are
//!   byte-compatible with [`ShardedEngine`]: checkpoints written by
//!   either engine restore into the other.
//! * **Live index** — with retention on, workers feed the shared
//!   [`crate::LiveIndex`] (its own lock, taken while the visit is still
//!   held so per-visit op order is preserved) as part of each deposit,
//!   so `live_snapshot()` carries postings from the same cut as the
//!   visible prefixes.
//!
//! Lock order: a worker never holds two of {scheduler, index, deposit}
//! at once; the engine thread may take index or a deposit *while*
//! holding the scheduler (barriers and `finish`), which cannot cycle
//! because workers only ever block on the scheduler empty-handed.
//!
//! A worker that panics marks the scheduler; subsequent engine calls
//! panic with a clear message rather than silently dropping data.
//!
//! [`ShardedEngine`]: crate::ShardedEngine

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use sitm_core::{Episode, SemanticTrajectory, Timestamp};
use sitm_store::{CheckpointFrame, LogStore};

use crate::checkpoint::{encode_shard, Checkpointer};
use crate::engine::{shard_of, EngineConfig, EngineError, EngineStats};
use crate::event::{StreamEvent, VisitKey};
use crate::live_index::LiveIndex;
use crate::live_query::{LiveSnapshot, LiveVisit, ShardLive};
use crate::shard::{EmittedEpisode, ShardSnapshot, ShardStats};
use crate::visit::VisitState;

/// One visit's slot in the scheduler.
struct VisitCell {
    /// Events pushed but not yet applied, in arrival order.
    queue: VecDeque<StreamEvent>,
    /// Open-visit state (`None` before open / after close).
    state: Option<VisitState>,
    /// Close instant, while the late-event fence is alive.
    closed_at: Option<Timestamp>,
    /// The worker whose deque this visit rides — `hash(visit)` at
    /// birth, then wherever it was last stolen to (affinity pinning).
    home: usize,
    /// Present in `home`'s deque.
    queued: bool,
    /// Currently being applied by a worker.
    held: bool,
}

impl VisitCell {
    fn new(home: usize) -> VisitCell {
        VisitCell {
            queue: VecDeque::new(),
            state: None,
            closed_at: None,
            home,
            queued: false,
            held: false,
        }
    }
}

/// The shared scheduler: visit cells, per-worker ready deques, and the
/// fence bookkeeping — *routing* state only. What slices produce goes
/// to the per-worker [`Deposit`]s instead.
struct Scheduler {
    visits: HashMap<u64, VisitCell>,
    /// Ready visits per worker; stealing pops the back of a victim.
    deques: Vec<VecDeque<u64>>,
    /// Events sitting in visit queues (backpressure + quiesce).
    queued_events: usize,
    /// Visits currently held by workers (quiesce).
    held_visits: usize,
    shutdown: bool,
    /// A worker died mid-slice; engine state is no longer trustworthy.
    panicked: bool,
    /// Live close fences per hash shard, ordered by close instant —
    /// the incremental twin of the sequential shard's `closed_order`,
    /// so capacity eviction is O(log n) per close, never a sweep.
    fences: Vec<BTreeSet<(Timestamp, u64)>>,
}

impl Scheduler {
    fn new(workers: usize, shards: usize) -> Scheduler {
        Scheduler {
            visits: HashMap::new(),
            deques: (0..workers).map(|_| VecDeque::new()).collect(),
            queued_events: 0,
            held_visits: 0,
            shutdown: false,
            panicked: false,
            fences: vec![BTreeSet::new(); shards],
        }
    }

    /// All pushed events applied and deposited?
    fn quiesced(&self) -> bool {
        self.queued_events == 0 && self.held_visits == 0
    }

    /// Next visit for `worker`: its own deque front, else a whole cold
    /// visit stolen from the back of the longest other deque. Returns
    /// the deque the visit came from so the caller can attribute
    /// route-vs-steal and refresh that queue's depth gauge.
    fn next_for(&mut self, worker: usize) -> Option<(u64, usize)> {
        if let Some(key) = self.deques[worker].pop_front() {
            return Some((key, worker));
        }
        let victim = (0..self.deques.len())
            .filter(|&i| i != worker && !self.deques[i].is_empty())
            .max_by_key(|&i| self.deques[i].len())?;
        self.deques[victim].pop_back().map(|key| (key, victim))
    }

    /// Settles one visit cell's bookkeeping after a slice (or a
    /// synthesized close): records fence transitions in the per-shard
    /// ordered set, drops dead cells on the spot, and enforces the
    /// fence capacity by evicting the smallest close instants — O(log
    /// n) per close like the sequential shard's `closed_order` bound,
    /// never a stop-the-world sweep. Fencing itself is event-time
    /// deterministic, so reclamation below the cap is behaviorally
    /// invisible; above it, eviction timing is the documented
    /// divergence window of [`EngineConfig::fence_capacity`].
    fn settle_cell(
        &mut self,
        key: u64,
        shard: usize,
        was_fence: Option<Timestamp>,
        capacity: usize,
    ) {
        let Some(cell) = self.visits.get(&key) else {
            return;
        };
        let now_fence = cell.closed_at;
        let active = cell.held || cell.queued || !cell.queue.is_empty() || cell.state.is_some();
        if was_fence != now_fence {
            if let Some(at) = was_fence {
                self.fences[shard].remove(&(at, key));
            }
            if let Some(at) = now_fence {
                self.fences[shard].insert((at, key));
            }
        }
        if !active && now_fence.is_none() {
            // Dead cell: a close for a never-opened visit, or a fence
            // retired with nothing queued behind it.
            self.visits.remove(&key);
            return;
        }
        // Capacity eviction, oldest close first. A held cell's fence is
        // skipped (its value is mid-application); the overshoot is
        // bounded by the worker count.
        while self.fences[shard].len() > capacity {
            let victim = self.fences[shard]
                .iter()
                .copied()
                .find(|&(_, k)| self.visits.get(&k).is_none_or(|c| !c.held));
            let Some((at, k)) = victim else {
                break;
            };
            self.fences[shard].remove(&(at, k));
            if let Some(cell) = self.visits.get_mut(&k) {
                // Evicted: stragglers will re-open implicitly, the same
                // outcome an expired fence produces.
                cell.closed_at = None;
                if cell.state.is_none() && !cell.queued && cell.queue.is_empty() {
                    self.visits.remove(&k);
                }
            }
        }
    }
}

/// One worker's private accumulator: everything its slices produce.
/// Merged (in worker order, then deterministically sorted by every
/// consumer) at barriers.
#[derive(Default)]
struct Deposit {
    /// Per-slice counter deltas, summed.
    stats: ShardStats,
    /// Episodes finalized but not yet drained.
    pending: Vec<EmittedEpisode>,
    /// Completed trajectories not yet taken by the warehouse drain.
    finished: Vec<(u64, SemanticTrajectory)>,
    /// Running high-water mark per *hash shard* (monotonic; merged by
    /// per-slot max across deposits).
    shard_watermarks: Vec<Option<Timestamp>>,
}

impl Deposit {
    fn new(shards: usize) -> Deposit {
        Deposit {
            shard_watermarks: vec![None; shards],
            ..Deposit::default()
        }
    }
}

/// Work-stealing-engine instrument handles (`engine.*` metric names),
/// resolved once at spawn so workers pay relaxed atomics only.
struct ParallelMetrics {
    events_ingested: Arc<sitm_obs::Counter>,
    events_fenced: Arc<sitm_obs::Counter>,
    visits_routed: Arc<sitm_obs::Counter>,
    visits_stolen: Arc<sitm_obs::Counter>,
    /// Ready-deque depth per worker.
    queue_depth: Vec<Arc<sitm_obs::Gauge>>,
}

impl ParallelMetrics {
    fn bind(registry: &sitm_obs::MetricsRegistry, workers: usize) -> ParallelMetrics {
        ParallelMetrics {
            events_ingested: registry.counter("engine.events_ingested"),
            events_fenced: registry.counter("engine.events_fenced"),
            visits_routed: registry.counter("engine.visits_routed"),
            visits_stolen: registry.counter("engine.visits_stolen"),
            queue_depth: (0..workers)
                .map(|i| registry.gauge(&format!("engine.queue_depth.w{i}")))
                .collect(),
        }
    }
}

/// The scheduler plus the sharded deposit tier and its condition
/// variables.
struct Shared {
    state: Mutex<Scheduler>,
    /// Instrument handles shared by workers and the engine thread.
    metrics: ParallelMetrics,
    /// One deposit per worker — slice output lands here, off the
    /// scheduler lock.
    deposits: Vec<Mutex<Deposit>>,
    /// Online postings over open visits (retention on only). A
    /// dedicated lock: updated while the producing worker still holds
    /// the visit, so per-visit op order is preserved without riding the
    /// scheduler mutex.
    index: Mutex<LiveIndex>,
    /// Workers park here when no visit is ready.
    work: Condvar,
    /// The engine thread parks here (quiesce, backpressure).
    quiet: Condvar,
}

/// Locks a mutex, recovering from poison so `Drop` can always shut the
/// workers down (a panicked worker is surfaced via the `panicked` flag
/// instead).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A visit's state while a worker (or a barrier) applies events to it
/// outside the scheduler lock.
struct Resident {
    state: Option<VisitState>,
    closed_at: Option<Timestamp>,
}

/// Index maintenance recorded during a slice, applied to the shared
/// [`LiveIndex`] before the visit is released (same cut as the state it
/// indexes).
enum IndexOp {
    Observe {
        object: String,
        interval: sitm_core::PresenceInterval,
    },
    Remove,
}

/// Everything one application slice produced.
#[derive(Default)]
struct SliceOutput {
    stats: ShardStats,
    watermark: Option<Timestamp>,
    pending: Vec<EmittedEpisode>,
    finished: Vec<(u64, SemanticTrajectory)>,
    index_ops: Vec<IndexOp>,
}

impl SliceOutput {
    fn new() -> SliceOutput {
        SliceOutput::default()
    }
}

/// Applies one event to one visit — the per-visit core of
/// `Shard::apply`, kept behaviorally identical (the differential
/// property tests compare the two engines event for event): same
/// anomaly accounting, same implicit-open identity, same fence
/// semantics, same episode provenance, same finished-trajectory
/// retention.
fn apply_visit_event(
    key: u64,
    event: StreamEvent,
    resident: &mut Resident,
    ctx: &crate::shard::ShardCtx<'_>,
    scratch: &mut Vec<(usize, Episode)>,
    out: &mut SliceOutput,
) {
    out.stats.events += 1;
    let t = event.time();
    out.watermark = Some(out.watermark.map_or(t, |w| w.max(t)));
    if let Some(closed_at) = resident.closed_at {
        if t <= closed_at + ctx.allowed_lateness {
            out.stats.anomalies.after_close += 1;
            return;
        }
        // Past the lateness horizon of the close: retire the fence
        // (mirror of `Shard::apply`; the event falls through to the
        // normal open / implicit-open handling).
        resident.closed_at = None;
    }
    match event {
        StreamEvent::VisitOpened {
            moving_object,
            annotations,
            ..
        } => {
            if resident.state.is_some() {
                out.stats.anomalies.duplicate_opens += 1;
                return;
            }
            out.stats.visits_opened += 1;
            resident.state = Some(VisitState::new(
                moving_object,
                annotations,
                ctx,
                &mut out.stats.anomalies,
            ));
        }
        StreamEvent::Fix { cell, at, .. } => {
            out.stats.fixes += 1;
            ensure_open(key, resident, ctx, out);
            let state = resident.state.as_mut().expect("ensured above");
            let before = state.retained_intervals().len();
            state.apply_fix(cell, at, ctx, scratch, &mut out.stats.anomalies);
            record_accepted(state, before, ctx, out);
            collect_episodes(key, state, scratch, out);
        }
        StreamEvent::Presence { interval, .. } => {
            out.stats.presences += 1;
            ensure_open(key, resident, ctx, out);
            let state = resident.state.as_mut().expect("ensured above");
            let before = state.retained_intervals().len();
            state.apply_presence(interval, ctx, scratch, &mut out.stats.anomalies);
            record_accepted(state, before, ctx, out);
            collect_episodes(key, state, scratch, out);
        }
        StreamEvent::VisitClosed { at, .. } => {
            let Some(mut state) = resident.state.take() else {
                out.stats.anomalies.after_close += 1;
                return;
            };
            state.close(ctx, scratch, &mut out.stats.anomalies);
            if ctx.retain_finished {
                // Mirror of `Shard::apply`: the completed trajectory
                // heads for the warehouse tier.
                if let Some(trajectory) = state.live_trajectory() {
                    out.finished.push((key, trajectory));
                }
            }
            out.stats.visits_closed += 1;
            resident.closed_at = Some(at);
            if ctx.retain_intervals {
                out.index_ops.push(IndexOp::Remove);
            }
            collect_episodes(key, &state, scratch, out);
        }
    }
}

/// Mirror of `Shard::ensure_visit`: an observation for a visit never
/// opened adopts it with the same synthetic identity.
fn ensure_open(
    key: u64,
    resident: &mut Resident,
    ctx: &crate::shard::ShardCtx<'_>,
    out: &mut SliceOutput,
) {
    if resident.state.is_none() {
        out.stats.anomalies.implicit_opens += 1;
        out.stats.visits_opened += 1;
        resident.state = Some(VisitState::new(
            format!("implicit-{key}"),
            sitm_core::AnnotationSet::from_iter([sitm_core::Annotation::goal("streamed")]),
            ctx,
            &mut out.stats.anomalies,
        ));
    }
}

/// Queues live-index observations for the intervals this apply accepted
/// (visible as growth of the retained slice).
fn record_accepted(
    state: &VisitState,
    before: usize,
    ctx: &crate::shard::ShardCtx<'_>,
    out: &mut SliceOutput,
) {
    if !ctx.retain_intervals {
        return;
    }
    for interval in &state.retained_intervals()[before..] {
        out.index_ops.push(IndexOp::Observe {
            object: state.moving_object.clone(),
            interval: interval.clone(),
        });
    }
}

/// Mirror of `Shard::collect`.
fn collect_episodes(
    key: u64,
    state: &VisitState,
    scratch: &mut Vec<(usize, Episode)>,
    out: &mut SliceOutput,
) {
    if scratch.is_empty() {
        return;
    }
    let moving_object = state.moving_object.clone();
    for (predicate, episode) in scratch.drain(..) {
        out.stats.episodes += 1;
        out.pending.push(EmittedEpisode {
            visit: VisitKey(key),
            moving_object: moving_object.clone(),
            predicate,
            episode,
        });
    }
}

/// Applies a slice's index ops to the shared index. Must run while the
/// producing thread still holds the visit, so per-visit op order is
/// preserved across worker migrations.
fn apply_index_ops(index: &Mutex<LiveIndex>, key: u64, ops: Vec<IndexOp>) {
    if ops.is_empty() {
        return;
    }
    let mut index = lock(index);
    for op in ops {
        match op {
            IndexOp::Observe { object, interval } => index.observe(key, &object, &interval),
            IndexOp::Remove => index.remove(key),
        }
    }
}

/// Folds a slice's remaining output into a deposit.
fn absorb_into_deposit(deposit: &mut Deposit, key: u64, out: SliceOutput, shards: usize) {
    deposit.stats.absorb(&out.stats);
    deposit.pending.extend(out.pending);
    deposit.finished.extend(out.finished);
    if let Some(t) = out.watermark {
        let slot = &mut deposit.shard_watermarks[shard_of(VisitKey(key), shards)];
        *slot = Some(slot.map_or(t, |w| w.max(t)));
    }
}

/// The worker body: take a ready visit (own deque first, then steal a
/// cold one), apply its queued events outside every lock, publish the
/// results (index under the index lock, the rest into this worker's own
/// deposit), then re-enter the scheduler only for cell bookkeeping.
fn worker_loop(worker: usize, shared: &Shared, config: &EngineConfig) {
    let ctx = config.ctx();
    let mut scratch: Vec<(usize, Episode)> = Vec::new();
    let mut guard = lock(&shared.state);
    loop {
        if let Some((key, source)) = guard.next_for(worker) {
            shared.metrics.queue_depth[source].set(guard.deques[source].len() as i64);
            if source != worker {
                shared.metrics.visits_stolen.inc();
            }
            let events = {
                let cell = guard.visits.get_mut(&key).expect("queued visit has a cell");
                cell.queued = false;
                cell.held = true;
                cell.home = worker;
                std::mem::take(&mut cell.queue)
            };
            let mut resident = {
                let cell = guard.visits.get_mut(&key).expect("cell");
                Resident {
                    state: cell.state.take(),
                    closed_at: cell.closed_at,
                }
            };
            guard.queued_events -= events.len();
            guard.held_visits += 1;
            drop(guard);

            let mut out = SliceOutput::new();
            out.stats.batches_flushed = 1;
            for event in events {
                apply_visit_event(key, event, &mut resident, &ctx, &mut scratch, &mut out);
            }
            // Per-slice fence-rejection delta (slice outputs are fresh,
            // so this can never double-count restored history).
            if out.stats.anomalies.after_close > 0 {
                shared
                    .metrics
                    .events_fenced
                    .add(out.stats.anomalies.after_close);
            }

            // Publish while the visit is still held (it cannot be
            // re-acquired until `held` clears below): index first, then
            // this worker's deposit — neither touches the scheduler.
            apply_index_ops(&shared.index, key, std::mem::take(&mut out.index_ops));
            absorb_into_deposit(&mut lock(&shared.deposits[worker]), key, out, config.shards);

            guard = lock(&shared.state);
            let (requeue, was_fence) = {
                let cell = guard.visits.get_mut(&key).expect("held cell persists");
                let was_fence = cell.closed_at;
                cell.state = resident.state;
                cell.closed_at = resident.closed_at;
                cell.held = false;
                // Events that arrived while we held the visit: it is
                // cold again — back onto our own deque.
                let requeue = !cell.queue.is_empty() && {
                    cell.queued = true;
                    true
                };
                (requeue, was_fence)
            };
            if requeue {
                guard.deques[worker].push_back(key);
            }
            guard.held_visits -= 1;
            let shard = shard_of(VisitKey(key), config.shards);
            guard.settle_cell(key, shard, was_fence, config.fence_capacity.max(1));
            shared.quiet.notify_all();
        } else if guard.shutdown {
            break;
        } else {
            guard = shared
                .work
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Work-stealing online trajectory-ingestion engine: the same surface
/// and the same output as [`crate::ShardedEngine`], with visits applied
/// concurrently, rebalanced across workers under skew, and results
/// deposited through per-worker accumulators instead of one shared
/// mutex.
pub struct ParallelEngine {
    config: Arc<EngineConfig>,
    shared: Arc<Shared>,
    buffer: Vec<StreamEvent>,
    handles: Vec<JoinHandle<()>>,
    sequence: u64,
    /// Advances whenever the queryable live state may have changed
    /// (see [`ParallelEngine::epoch`]).
    epoch: u64,
    /// Mutations since the epoch was last stamped.
    dirty: bool,
    /// The live snapshot memoized for `epoch` — a cache hit skips the
    /// dispatch + quiesce barrier *and* the open-visit clone entirely.
    snapshot_cache: Option<(u64, Arc<LiveSnapshot>)>,
}

impl ParallelEngine {
    /// Builds an engine, spawning one worker thread per configured
    /// shard (`config.shards` doubles as the worker count, as it did
    /// for the channel router).
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        Ok(Self::create(config))
    }

    /// Rebuilds an engine from the frames of one complete checkpoint
    /// (ordered by shard). The configuration must match the one the
    /// checkpoint was taken under — including interval retention, which
    /// is the operator's contract just like the predicate table.
    /// Checkpoints are runtime-portable: frames written by either
    /// engine restore into either (restored visits are seeded onto
    /// their hash shard's worker and rebalance from there).
    pub fn restore(config: EngineConfig, frames: &[&CheckpointFrame]) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let (shards, sequence) = crate::checkpoint::decode_checkpoint(&config, frames)?;
        let engine = Self::create(config);
        {
            let mut guard = lock(&engine.shared.state);
            let mut seed = lock(&engine.shared.deposits[0]);
            let mut index = lock(&engine.shared.index);
            for (i, shard) in shards.into_iter().enumerate() {
                let parts = shard.into_parts();
                seed.shard_watermarks[i] = parts.watermark;
                seed.stats.absorb(&parts.stats);
                seed.pending.extend(parts.pending);
                seed.finished.extend(parts.finished);
                for (key, state) in parts.visits {
                    for interval in state.retained_intervals() {
                        index.observe(key, &state.moving_object, interval);
                    }
                    let mut cell = VisitCell::new(i);
                    cell.state = Some(state);
                    guard.visits.insert(key, cell);
                }
                for (key, at) in parts.closed {
                    let mut cell = VisitCell::new(i);
                    cell.closed_at = Some(at);
                    guard.visits.insert(key, cell);
                    guard.fences[i].insert((at, key));
                }
            }
        }
        let mut engine = engine;
        engine.sequence = sequence;
        Ok(engine)
    }

    fn create(config: EngineConfig) -> Self {
        let workers = config.shards;
        let config = Arc::new(config);
        let shared = Arc::new(Shared {
            state: Mutex::new(Scheduler::new(workers, config.shards)),
            metrics: ParallelMetrics::bind(&config.metrics, workers),
            deposits: (0..workers)
                .map(|_| Mutex::new(Deposit::new(config.shards)))
                .collect(),
            index: Mutex::new(LiveIndex::new()),
            work: Condvar::new(),
            quiet: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let config = Arc::clone(&config);
                std::thread::Builder::new()
                    .name(format!("sitm-worker-{worker}"))
                    .spawn(move || {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker_loop(worker, &shared, &config);
                        }));
                        if run.is_err() {
                            let mut guard = lock(&shared.state);
                            guard.panicked = true;
                            drop(guard);
                            shared.work.notify_all();
                            shared.quiet.notify_all();
                        }
                    })
                    .expect("spawn shard worker thread")
            })
            .collect();
        ParallelEngine {
            config,
            shared,
            buffer: Vec::new(),
            handles,
            sequence: 0,
            epoch: 0,
            dirty: false,
            snapshot_cache: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker threads running (one per shard).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Raises the checkpoint sequence counter to at least `sequence`
    /// (see [`crate::ShardedEngine::advance_sequence_to`]).
    pub fn advance_sequence_to(&mut self, sequence: u64) {
        self.sequence = self.sequence.max(sequence);
    }

    fn panic_if_worker_died(s: &Scheduler) {
        if s.panicked {
            panic!("shard worker died (panicked); engine state is lost");
        }
    }

    /// Routes one event toward the scheduler. Events are buffered on
    /// the caller's thread and handed over one batch per lock
    /// acquisition, so per-event cost here is one push.
    pub fn ingest(&mut self, event: StreamEvent) {
        self.dirty = true;
        self.buffer.push(event);
        if self.buffer.len() >= self.config.batch_capacity.max(1) {
            self.dispatch();
        }
    }

    /// Ingests a whole feed.
    pub fn ingest_all<I: IntoIterator<Item = StreamEvent>>(&mut self, events: I) {
        for event in events {
            self.ingest(event);
        }
    }

    /// Pushes the router buffer into the scheduler, blocking while the
    /// queued-event bound (`channel_depth × batch_capacity × workers`)
    /// is exceeded (backpressure).
    fn dispatch(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.buffer);
        let workers = self.handles.len();
        let bound = self
            .config
            .channel_depth
            .max(1)
            .saturating_mul(self.config.batch_capacity.max(1))
            .saturating_mul(workers.max(1));
        let shards = self.config.shards;
        let mut guard = lock(&self.shared.state);
        while guard.queued_events >= bound {
            Self::panic_if_worker_died(&guard);
            guard = self
                .shared
                .quiet
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        Self::panic_if_worker_died(&guard);
        let batch = events.len() as u64;
        let mut routed = 0u64;
        for event in events {
            let key = event.visit().0;
            let cell = guard
                .visits
                .entry(key)
                .or_insert_with(|| VisitCell::new(shard_of(VisitKey(key), shards) % workers));
            cell.queue.push_back(event);
            let ready = !cell.queued && !cell.held;
            let home = cell.home;
            if ready {
                cell.queued = true;
                guard.deques[home].push_back(key);
                routed += 1;
            }
            guard.queued_events += 1;
        }
        let metrics = &self.shared.metrics;
        metrics.events_ingested.add(batch);
        metrics.visits_routed.add(routed);
        for (gauge, deque) in metrics.queue_depth.iter().zip(&guard.deques) {
            gauge.set(deque.len() as i64);
        }
        drop(guard);
        self.shared.work.notify_all();
    }

    /// Waits until every pushed event is applied and deposited.
    fn quiesce(&self) -> MutexGuard<'_, Scheduler> {
        let mut guard = lock(&self.shared.state);
        loop {
            Self::panic_if_worker_died(&guard);
            if guard.quiesced() {
                return guard;
            }
            guard = self
                .shared
                .quiet
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Applies every buffered event now (a full barrier).
    pub fn flush(&mut self) {
        self.dispatch();
        drop(self.quiesce());
    }

    /// Flushes, then returns every episode finalized since the last
    /// drain, in the same deterministic global order as
    /// [`crate::ShardedEngine::drain`].
    pub fn drain(&mut self) -> Vec<EmittedEpisode> {
        self.dispatch();
        let guard = self.quiesce();
        let mut out = Vec::new();
        for deposit in &self.shared.deposits {
            out.append(&mut lock(deposit).pending);
        }
        drop(guard);
        if !out.is_empty() {
            // Pending episodes ride the live snapshot; removing them
            // changes the queryable cut.
            self.dirty = true;
        }
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// Returns drained episodes to the pending pool (the undo of
    /// [`ParallelEngine::drain`] for deltas that could not be
    /// delivered); the next drain re-emits them in the usual
    /// deterministic order.
    pub fn requeue_pending(&mut self, episodes: Vec<EmittedEpisode>) {
        if episodes.is_empty() {
            return;
        }
        self.dirty = true;
        lock(&self.shared.deposits[0]).pending.extend(episodes);
    }

    /// Flushes, then takes every visit trajectory completed since the
    /// last take, in the same deterministic global order as
    /// [`crate::ShardedEngine::take_finished`]. Empty unless
    /// [`EngineConfig::with_warehouse`] is on.
    pub fn take_finished(&mut self) -> Vec<SemanticTrajectory> {
        self.dispatch();
        let guard = self.quiesce();
        let mut out: Vec<SemanticTrajectory> = Vec::new();
        for deposit in &self.shared.deposits {
            out.extend(
                std::mem::take(&mut lock(deposit).finished)
                    .into_iter()
                    .map(|(_, t)| t),
            );
        }
        drop(guard);
        sitm_store::sort_run(&mut out);
        out
    }

    /// End-of-stream: closes every open visit (at its hash shard's
    /// watermark, exactly like the sequential `close_all`), then
    /// drains.
    pub fn finish(&mut self) -> Vec<EmittedEpisode> {
        self.dirty = true;
        self.dispatch();
        let mut guard = self.quiesce();
        let ctx = self.config.ctx();
        let shards = self.config.shards;
        let mut keys: Vec<u64> = guard
            .visits
            .iter()
            .filter(|(_, cell)| cell.state.is_some())
            .map(|(key, _)| *key)
            .collect();
        keys.sort_unstable();
        let mut scratch = Vec::new();
        // One deposit sweep up front: the synthesized closes stamp each
        // shard's merged high-water mark, which they cannot raise, so
        // the merge stays valid for the whole loop.
        let watermarks = self.merged_watermarks();
        for key in keys {
            let shard = shard_of(VisitKey(key), shards);
            let at = watermarks[shard].unwrap_or(Timestamp(0));
            let mut resident = {
                let cell = guard.visits.get_mut(&key).expect("open visit");
                Resident {
                    state: cell.state.take(),
                    closed_at: cell.closed_at,
                }
            };
            let mut out = SliceOutput::new();
            apply_visit_event(
                key,
                StreamEvent::VisitClosed {
                    visit: VisitKey(key),
                    at,
                },
                &mut resident,
                &ctx,
                &mut scratch,
                &mut out,
            );
            let was_fence = {
                let cell = guard.visits.get_mut(&key).expect("open visit");
                let was_fence = cell.closed_at;
                cell.state = resident.state;
                cell.closed_at = resident.closed_at;
                was_fence
            };
            if out.stats.anomalies.after_close > 0 {
                self.shared
                    .metrics
                    .events_fenced
                    .add(out.stats.anomalies.after_close);
            }
            // Engine-thread deposit: index first (workers are
            // quiescent, but the order mirrors the worker path), then
            // deposit 0 — safe while holding the scheduler because
            // workers never block on the scheduler holding either lock.
            apply_index_ops(&self.shared.index, key, std::mem::take(&mut out.index_ops));
            absorb_into_deposit(&mut lock(&self.shared.deposits[0]), key, out, shards);
            guard.settle_cell(key, shard, was_fence, self.config.fence_capacity.max(1));
        }
        drop(guard);
        let mut out = Vec::new();
        for deposit in &self.shared.deposits {
            out.append(&mut lock(deposit).pending);
        }
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// Per-shard watermark vector merged across deposits (slot-wise
    /// max — each deposit's slots are monotonic).
    fn merged_watermarks(&self) -> Vec<Option<Timestamp>> {
        let mut merged = vec![None; self.config.shards];
        for deposit in &self.shared.deposits {
            let deposit = lock(deposit);
            for (slot, w) in merged.iter_mut().zip(&deposit.shard_watermarks) {
                if let Some(t) = w {
                    *slot = Some(slot.map_or(*t, |m: Timestamp| m.max(*t)));
                }
            }
        }
        merged
    }

    /// The engine's state epoch: advances whenever the queryable live
    /// state may have changed since the last stamp (an ingest, a drain,
    /// a finish, a restore, a requeue). Stamping is barrier-free — the
    /// counter is what keys the snapshot cache and what push
    /// subscribers see on notifications.
    pub fn epoch(&mut self) -> u64 {
        if self.dirty {
            self.epoch += 1;
            self.dirty = false;
            self.snapshot_cache = None;
        }
        self.epoch
    }

    /// A snapshot-consistent cut of the live state across every worker
    /// (see [`crate::live_query`] for the consistency model). The
    /// snapshot carries the scheduler's live index from the same cut.
    ///
    /// The cut is **epoch-cached**: while nothing mutates the engine,
    /// repeated calls share one [`Arc`]'d snapshot — no dispatch, no
    /// quiesce barrier, no open-visit clone. Any ingest invalidates the
    /// cache, so the first call after a mutation pays the full cut.
    pub fn live_snapshot(&mut self) -> Arc<LiveSnapshot> {
        self.live_snapshot_cached().0
    }

    /// [`ParallelEngine::live_snapshot`], also reporting whether the
    /// cut was served from the epoch cache (`true` = cache hit).
    pub fn live_snapshot_cached(&mut self) -> (Arc<LiveSnapshot>, bool) {
        let epoch = self.epoch();
        if let Some((cached_epoch, snapshot)) = &self.snapshot_cache {
            if *cached_epoch == epoch {
                return (Arc::clone(snapshot), true);
            }
        }
        let _rebuild = sitm_obs::trace::child_detail("snapshot_rebuild");
        let snapshot = Arc::new(self.cut_live_snapshot());
        self.snapshot_cache = Some((epoch, Arc::clone(&snapshot)));
        (snapshot, false)
    }

    /// Cuts a fresh snapshot (the cache-miss path): dispatch, quiesce,
    /// clone every open visit's retained prefix plus the live index.
    fn cut_live_snapshot(&mut self) -> LiveSnapshot {
        self.dispatch();
        let guard = self.quiesce();
        let shards = self.config.shards;
        let watermarks = self.merged_watermarks();
        let mut per_shard: Vec<ShardLive> = (0..shards)
            .map(|i| ShardLive {
                visits: Vec::new(),
                pending: Vec::new(),
                watermark: watermarks[i],
                unqueryable: 0,
                index: LiveIndex::new(),
            })
            .collect();
        for (key, cell) in &guard.visits {
            let Some(state) = &cell.state else { continue };
            let shard = shard_of(VisitKey(*key), shards);
            match state.live_trajectory() {
                Some(trajectory) => per_shard[shard].visits.push(LiveVisit {
                    visit: VisitKey(*key),
                    trajectory,
                }),
                None => per_shard[shard].unqueryable += 1,
            }
        }
        for deposit in &self.shared.deposits {
            per_shard[0]
                .pending
                .extend(lock(deposit).pending.iter().cloned());
        }
        per_shard[0].index = lock(&self.shared.index).clone();
        drop(guard);
        LiveSnapshot::from_shards(per_shard)
    }

    /// The engine watermark (minimum across populated hash shards).
    /// Quiesces first, so every event already handed to the scheduler
    /// is counted — the behaviour of the old channel router, whose
    /// report command queued behind outstanding batches. Events still
    /// sitting in the caller-side router buffer are not counted,
    /// matching [`crate::ShardedEngine::watermark`]'s only-applied
    /// semantics (it does not flush shard inboxes either).
    pub fn watermark(&self) -> Option<Timestamp> {
        let guard = self.quiesce();
        let min = self.merged_watermarks().into_iter().flatten().min();
        drop(guard);
        min
    }

    /// Aggregated counters. This is a barrier: the router buffer is
    /// pushed and every outstanding event applied first, so the counts
    /// are exact as of the call — unlike the old channel router, which
    /// reported around events still sitting in its batches.
    pub fn stats(&mut self) -> EngineStats {
        self.dispatch();
        let guard = self.quiesce();
        let open_visits = guard
            .visits
            .values()
            .filter(|cell| cell.state.is_some())
            .count() as u64;
        let mut total = ShardStats::default();
        for deposit in &self.shared.deposits {
            total.absorb(&lock(deposit).stats);
        }
        drop(guard);
        let mut stats = EngineStats::default();
        stats.absorb_shard(&total, open_visits);
        stats
    }

    /// Flushes and captures one complete checkpoint as frames (one per
    /// hash shard, sharing a fresh sequence) — byte-compatible with the
    /// sequential engine's frames, so checkpoints stay runtime-portable.
    pub fn checkpoint_frames(&mut self) -> Vec<CheckpointFrame> {
        self.dispatch();
        self.sequence += 1;
        let sequence = self.sequence;
        let shards = self.config.shards;
        let guard = self.quiesce();
        let watermarks = self.merged_watermarks();
        let mut snapshots: Vec<ShardSnapshot> = (0..shards)
            .map(|i| ShardSnapshot {
                watermark: watermarks[i],
                visits: Vec::new(),
                closed: Vec::new(),
                pending: Vec::new(),
                finished: Vec::new(),
                stats: ShardStats::default(),
            })
            .collect();
        // Counters are engine-global here; recorded on shard 0 so the
        // aggregate (the only cross-engine observable) round-trips.
        for deposit in &self.shared.deposits {
            snapshots[0].stats.absorb(&lock(deposit).stats);
        }
        let mut keys: Vec<u64> = guard.visits.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let cell = &guard.visits[&key];
            let shard = shard_of(VisitKey(key), shards);
            if let Some(state) = &cell.state {
                snapshots[shard].visits.push((key, state.snapshot()));
            } else if let Some(at) = cell.closed_at {
                snapshots[shard].closed.push((key, at));
            }
        }
        for deposit in &self.shared.deposits {
            let deposit = lock(deposit);
            for episode in &deposit.pending {
                snapshots[shard_of(episode.visit, shards)]
                    .pending
                    .push(episode.clone());
            }
            for (key, trajectory) in &deposit.finished {
                snapshots[shard_of(VisitKey(*key), shards)]
                    .finished
                    .push((*key, trajectory.clone()));
            }
        }
        drop(guard);
        for snapshot in &mut snapshots {
            snapshot.pending.sort_by_key(|e| e.sort_key());
            snapshot
                .finished
                .sort_by_key(|(key, t)| (t.start(), t.end(), *key));
        }
        snapshots
            .into_iter()
            .enumerate()
            .map(|(i, snapshot)| CheckpointFrame {
                sequence,
                shard: i as u32,
                shard_count: shards as u32,
                payload: encode_shard(&snapshot, self.config.predicates.len()),
            })
            .collect()
    }

    /// Persists a consistent snapshot into `log`, then fsyncs. Same
    /// recovery contract as [`crate::ShardedEngine::checkpoint`]:
    /// exactly-once relative to `drain`.
    pub fn checkpoint(&mut self, log: &mut LogStore<CheckpointFrame>) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        crate::checkpoint::append_and_sync(log, &frames)?;
        Ok(sequence)
    }

    /// Checkpoints through a compacting [`Checkpointer`], keeping the
    /// log bounded. Returns the sequence.
    pub fn checkpoint_into(&mut self, checkpointer: &mut Checkpointer) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        checkpointer.commit(frames)?;
        Ok(sequence)
    }
}

impl Drop for ParallelEngine {
    /// Signals shutdown and joins the workers, which drain every
    /// already-pushed event first. Events still sitting in the router
    /// buffer are dropped — like the sequential engine, dropping
    /// without `drain`/`finish`/`checkpoint` abandons unflushed work. A
    /// worker that panicked is joined and ignored (its panic already
    /// surfaced on the engine thread if any call touched it).
    fn drop(&mut self) {
        {
            let mut guard = lock(&self.shared.state);
            guard.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.quiet.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{sort_feed, VisitKey};
    use crate::ShardedEngine;
    use sitm_core::{
        Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig::new(vec![
            (IntervalPredicate::in_cells([cell(1)]), label("one")),
            (IntervalPredicate::any(), label("whole")),
        ])
        .with_shards(shards)
        .with_batch_capacity(4)
        .with_channel_depth(2)
    }

    fn feed() -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for v in 0..12u64 {
            let base = v as i64 * 10;
            events.push(StreamEvent::VisitOpened {
                visit: VisitKey(v),
                moving_object: format!("mo-{v}"),
                annotations: label("visit"),
                at: Timestamp(base),
            });
            for (i, c) in [1usize, 0, 1].iter().enumerate() {
                events.push(StreamEvent::Presence {
                    visit: VisitKey(v),
                    interval: PresenceInterval::new(
                        TransitionTaken::Unknown,
                        cell(*c),
                        Timestamp(base + i as i64 * 100),
                        Timestamp(base + i as i64 * 100 + 50),
                    ),
                });
            }
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(base + 250),
            });
        }
        sort_feed(&mut events);
        events
    }

    #[test]
    fn matches_sequential_engine_for_every_worker_count() {
        let mut reference = ShardedEngine::new(config(2)).unwrap();
        reference.ingest_all(feed());
        let expected = reference.finish();
        for workers in [1usize, 2, 4, 8] {
            let mut engine = ParallelEngine::new(config(workers)).unwrap();
            assert_eq!(engine.workers(), workers);
            engine.ingest_all(feed());
            assert_eq!(engine.finish(), expected, "{workers} workers");
            let stats = engine.stats();
            assert_eq!(stats.visits_opened, 12);
            assert_eq!(stats.open_visits, 0);
        }
    }

    #[test]
    fn incremental_drains_are_consistent_cuts() {
        let events = feed();
        let mid = events.len() / 2;
        let mut engine = ParallelEngine::new(config(4)).unwrap();
        engine.ingest_all(events[..mid].to_vec());
        let mut delivered = engine.drain();
        engine.ingest_all(events[mid..].to_vec());
        delivered.extend(engine.finish());
        delivered.sort_by_key(|a| a.sort_key());

        let mut oneshot = ParallelEngine::new(config(4)).unwrap();
        oneshot.ingest_all(events);
        assert_eq!(delivered, oneshot.finish());
    }

    #[test]
    fn watermark_and_stats_are_aggregated() {
        let mut engine = ParallelEngine::new(config(3)).unwrap();
        assert_eq!(engine.watermark(), None);
        engine.ingest_all(feed());
        engine.flush();
        assert!(engine.watermark() >= Some(Timestamp(250)));
        let stats = engine.stats();
        assert_eq!(stats.visits_opened, 12);
        assert_eq!(stats.presences, 36);
        assert_eq!(stats.anomalies.total(), 0);
    }

    /// Regression for the ROADMAP item this PR closes: `stats()` must
    /// flush the router buffer first, so counts reflect every ingested
    /// event — the old channel router reported around buffered batches.
    #[test]
    fn stats_barrier_flushes_the_router_buffer() {
        // Batch capacity far above the feed size: every event sits in
        // the caller-side buffer until something barriers.
        let mut engine = ParallelEngine::new(config(2).with_batch_capacity(10_000)).unwrap();
        let events = feed();
        let total = events.len() as u64;
        engine.ingest_all(events);
        let stats = engine.stats();
        assert_eq!(stats.events, total, "stats() must observe buffered events");
        assert_eq!(stats.visits_opened, 12);
        assert_eq!(stats.visits_closed, 12);
    }

    /// Regression for the sharded-deposit rework: deposits accumulate
    /// per worker and merge only at barriers, so counters and drained
    /// episodes must still agree with the sequential engine when work
    /// is spread across many workers (each with its own accumulator).
    #[test]
    fn sharded_deposits_merge_to_sequential_totals() {
        let mut reference = ShardedEngine::new(config(2)).unwrap();
        reference.ingest_all(feed());
        reference.flush();
        let expected_stats = reference.stats();
        let expected_episodes = reference.finish();

        let mut engine = ParallelEngine::new(config(8)).unwrap();
        engine.ingest_all(feed());
        engine.flush();
        let stats = engine.stats();
        assert_eq!(stats.events, expected_stats.events);
        assert_eq!(stats.episodes, expected_stats.episodes);
        assert_eq!(stats.presences, expected_stats.presences);
        // Multiple workers really deposited (batches_flushed counts
        // slices, which exist regardless of which worker ran them).
        assert!(stats.batches_flushed > 0);
        assert_eq!(engine.finish(), expected_episodes);
    }

    #[test]
    fn take_finished_matches_sequential_and_is_exactly_once() {
        let mut reference = ShardedEngine::new(config(2).with_warehouse()).unwrap();
        reference.ingest_all(feed());
        reference.flush();
        let expected = reference.take_finished();
        assert_eq!(expected.len(), 12, "every closed visit produced a record");
        assert!(
            reference.take_finished().is_empty(),
            "drain is exactly-once"
        );

        for workers in [1usize, 4] {
            let mut engine = ParallelEngine::new(config(workers).with_warehouse()).unwrap();
            engine.ingest_all(feed());
            assert_eq!(engine.take_finished(), expected, "{workers} workers");
            assert!(engine.take_finished().is_empty());
        }
        // Without the warehouse drain nothing is retained.
        let mut plain = ParallelEngine::new(config(2)).unwrap();
        plain.ingest_all(feed());
        assert!(plain.take_finished().is_empty());
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(
            ParallelEngine::new(config(0)),
            Err(EngineError::ZeroShards)
        ));
    }

    #[test]
    fn checkpoint_restore_round_trips_across_threads() {
        let events = feed();
        let mid = events.len() / 2;
        let path = std::env::temp_dir().join(format!(
            "sitm-parallel-ckpt-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut reference = ParallelEngine::new(config(4)).unwrap();
        reference.ingest_all(events.iter().cloned());
        let expected = reference.finish();

        let mut delivered;
        {
            let mut engine = ParallelEngine::new(config(4)).unwrap();
            engine.ingest_all(events[..mid].iter().cloned());
            delivered = engine.drain();
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).unwrap();
            engine.checkpoint(&mut log).unwrap();
        }
        let (mut restored, _log, report) =
            crate::checkpoint::resume_parallel_from_log(config(4), &path).unwrap();
        assert!(report.is_clean());
        restored.ingest_all(events[mid..].iter().cloned());
        delivered.extend(restored.finish());
        delivered.sort_by_key(|a| a.sort_key());
        assert_eq!(delivered, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finished_backlog_survives_checkpoint_restore() {
        let events = feed();
        let path = std::env::temp_dir().join(format!(
            "sitm-parallel-finished-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut reference = ParallelEngine::new(config(4).with_warehouse()).unwrap();
        reference.ingest_all(events.iter().cloned());
        reference.flush();
        let expected = reference.take_finished();

        {
            let mut engine = ParallelEngine::new(config(4).with_warehouse()).unwrap();
            engine.ingest_all(events.iter().cloned());
            // Checkpoint *without* taking the finished backlog: it must
            // reappear after restore (exactly-once relative to take).
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).unwrap();
            engine.checkpoint(&mut log).unwrap();
        }
        let (mut restored, _log, report) =
            crate::checkpoint::resume_parallel_from_log(config(4).with_warehouse(), &path).unwrap();
        assert!(report.is_clean());
        assert_eq!(restored.take_finished(), expected);
        assert!(restored.take_finished().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
