//! The thread-per-shard parallel runtime.
//!
//! [`ParallelEngine`] runs each hash partition on its own worker thread
//! behind a bounded SPSC-style channel (std `mpsc::sync_channel`; the
//! engine is the only producer per channel). Because a visit's whole
//! lifetime lands on one shard and each channel preserves send order,
//! the interleaving of *threads* cannot change the per-visit event
//! order — so the parallel engine produces byte-identical episodes to
//! [`ShardedEngine`] and to the batch extractor (property-tested in
//! `tests/parallel_equivalence.rs` for 1/2/4/8 workers, shuffled feeds,
//! and crash/restore mid-stream).
//!
//! ## Design
//!
//! * **Routing** — the caller's thread hashes each event to its shard
//!   ([FNV-1a], identical to the sequential engine) and buffers it in a
//!   per-shard router batch; a full batch is one channel send, amortizing
//!   synchronization to `1/batch_capacity` per event.
//! * **Backpressure** — channels are bounded at
//!   [`EngineConfig::channel_depth`] batches; a producer outrunning a
//!   shard blocks instead of ballooning memory.
//! * **Barriers** — `flush`/`drain`/`finish`/`checkpoint`/`live_snapshot`
//!   fan a control command (carrying a reply channel) to every worker
//!   *after* the outstanding batches, then await all replies. A shard's
//!   reply therefore reflects exactly the events ingested before the
//!   call: the same consistent cut the sequential engine gets from its
//!   in-line flush, which is what makes drains and live snapshots
//!   snapshot-consistent (see [`crate::live_query`]).
//! * **Shared predicate table** — one `Arc<EngineConfig>` serves every
//!   worker; `IntervalPredicate: Send + Sync` makes that sound.
//!
//! A worker that panics poisons its channel; subsequent engine calls
//! panic with the shard index rather than silently dropping data.
//!
//! [FNV-1a]: crate::engine

use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use sitm_core::Timestamp;
use sitm_store::{CheckpointFrame, LogStore};

use crate::checkpoint::{encode_shard, Checkpointer};
use crate::engine::{shard_of, EngineConfig, EngineError, EngineStats};
use crate::event::StreamEvent;
use crate::live_query::{LiveSnapshot, ShardLive};
use crate::shard::{EmittedEpisode, Shard, ShardSnapshot, ShardStats};

/// What a worker can be asked to do. Every control variant carries its
/// reply channel, so barriers are just "send, then receive".
enum Command {
    /// Apply a batch of routed events.
    Batch(Vec<StreamEvent>),
    /// Apply everything buffered, then acknowledge.
    Flush(Sender<()>),
    /// Flush, then hand over the finalized-but-undrained episodes.
    Drain(Sender<Vec<EmittedEpisode>>),
    /// Flush, close every open visit, then hand over the episodes.
    Finish(Sender<Vec<EmittedEpisode>>),
    /// Flush, then hand over a checkpointable snapshot.
    Snapshot(Sender<ShardSnapshot>),
    /// Flush, then hand over the live-query state.
    Live(Sender<ShardLive>),
    /// Report counters (without flushing, mirroring the sequential
    /// engine's non-flushing `stats`/`watermark`).
    Report(Sender<ShardReport>),
}

/// One shard's counter reply.
struct ShardReport {
    stats: ShardStats,
    open_visits: usize,
    watermark: Option<Timestamp>,
}

/// One worker thread and its command channel.
struct Worker {
    tx: Option<SyncSender<Command>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn spawn(index: usize, shard: Shard, config: Arc<EngineConfig>) -> Worker {
        let (tx, rx) = mpsc::sync_channel(config.channel_depth.max(1));
        let handle = std::thread::Builder::new()
            .name(format!("sitm-shard-{index}"))
            .spawn(move || worker_loop(rx, shard, &config))
            .expect("spawn shard worker thread");
        Worker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn send(&self, index: usize, command: Command) {
        if self
            .tx
            .as_ref()
            .expect("worker channel open")
            .send(command)
            .is_err()
        {
            panic!("shard worker {index} died (panicked); engine state is lost");
        }
    }
}

/// The worker body: apply commands in channel order until the engine
/// drops the sender.
fn worker_loop(rx: Receiver<Command>, mut shard: Shard, config: &EngineConfig) {
    let ctx = config.ctx();
    while let Ok(command) = rx.recv() {
        match command {
            Command::Batch(events) => {
                for event in events {
                    shard.enqueue(event, &ctx);
                }
            }
            Command::Flush(reply) => {
                shard.flush(&ctx);
                let _ = reply.send(());
            }
            Command::Drain(reply) => {
                shard.flush(&ctx);
                let _ = reply.send(shard.take_pending());
            }
            Command::Finish(reply) => {
                shard.flush(&ctx);
                shard.close_all(&ctx);
                let _ = reply.send(shard.take_pending());
            }
            Command::Snapshot(reply) => {
                shard.flush(&ctx);
                let _ = reply.send(shard.snapshot());
            }
            Command::Live(reply) => {
                shard.flush(&ctx);
                let _ = reply.send(shard.live_state());
            }
            Command::Report(reply) => {
                let _ = reply.send(ShardReport {
                    stats: *shard.stats(),
                    open_visits: shard.open_visits(),
                    watermark: shard.watermark(),
                });
            }
        }
    }
}

/// Thread-per-shard online trajectory-ingestion engine: the same
/// surface and the same output as [`crate::ShardedEngine`], with shards
/// applied concurrently.
pub struct ParallelEngine {
    config: Arc<EngineConfig>,
    workers: Vec<Worker>,
    routers: Vec<Vec<StreamEvent>>,
    sequence: u64,
}

impl ParallelEngine {
    /// Builds an engine, spawning one worker thread per shard.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let shards = (0..config.shards).map(|_| Shard::new()).collect();
        Ok(Self::from_shards(config, shards))
    }

    /// Rebuilds an engine from the frames of one complete checkpoint
    /// (ordered by shard). The configuration must match the one the
    /// checkpoint was taken under — including interval retention, which
    /// is the operator's contract just like the predicate table.
    pub fn restore(config: EngineConfig, frames: &[&CheckpointFrame]) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let (shards, sequence) = crate::checkpoint::decode_checkpoint(&config, frames)?;
        let mut engine = Self::from_shards(config, shards);
        engine.sequence = sequence;
        Ok(engine)
    }

    fn from_shards(config: EngineConfig, shards: Vec<Shard>) -> Self {
        let config = Arc::new(config);
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| Worker::spawn(i, shard, Arc::clone(&config)))
            .collect();
        let routers = (0..config.shards).map(|_| Vec::new()).collect();
        ParallelEngine {
            config,
            workers,
            routers,
            sequence: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker threads running (one per shard).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Raises the checkpoint sequence counter to at least `sequence`
    /// (see [`crate::ShardedEngine::advance_sequence_to`]).
    pub fn advance_sequence_to(&mut self, sequence: u64) {
        self.sequence = self.sequence.max(sequence);
    }

    /// Routes one event toward its shard's worker. The event is handed
    /// to the channel once the shard's router batch fills (or at the
    /// next barrier), so per-event cost on the caller's thread is one
    /// hash and one push.
    pub fn ingest(&mut self, event: StreamEvent) {
        let shard = shard_of(event.visit(), self.config.shards);
        self.routers[shard].push(event);
        if self.routers[shard].len() >= self.config.batch_capacity.max(1) {
            let batch = std::mem::take(&mut self.routers[shard]);
            self.workers[shard].send(shard, Command::Batch(batch));
        }
    }

    /// Ingests a whole feed.
    pub fn ingest_all<I: IntoIterator<Item = StreamEvent>>(&mut self, events: I) {
        for event in events {
            self.ingest(event);
        }
    }

    /// Sends every non-empty router batch to its worker.
    fn dispatch(&mut self) {
        for (i, buffer) in self.routers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let batch = std::mem::take(buffer);
                self.workers[i].send(i, Command::Batch(batch));
            }
        }
    }

    /// Fans `make`'s command to every worker, then collects the replies
    /// in shard order. This is the barrier primitive: a reply reflects
    /// everything sent to that worker before the command.
    fn barrier<T>(&self, make: impl Fn(Sender<T>) -> Command) -> Vec<T> {
        let pending: Vec<Receiver<T>> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, worker)| {
                let (tx, rx) = mpsc::channel();
                worker.send(i, make(tx));
                rx
            })
            .collect();
        pending
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                rx.recv()
                    .unwrap_or_else(|_| panic!("shard worker {i} died before replying"))
            })
            .collect()
    }

    /// Applies every buffered event now (a full barrier).
    pub fn flush(&mut self) {
        self.dispatch();
        self.barrier(Command::Flush);
    }

    /// Flushes, then returns every episode finalized since the last
    /// drain, in the same deterministic global order as
    /// [`crate::ShardedEngine::drain`].
    pub fn drain(&mut self) -> Vec<EmittedEpisode> {
        self.dispatch();
        let mut out: Vec<EmittedEpisode> =
            self.barrier(Command::Drain).into_iter().flatten().collect();
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// End-of-stream: closes every open visit, then drains.
    pub fn finish(&mut self) -> Vec<EmittedEpisode> {
        self.dispatch();
        let mut out: Vec<EmittedEpisode> = self
            .barrier(Command::Finish)
            .into_iter()
            .flatten()
            .collect();
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// A snapshot-consistent cut of the live state across every worker
    /// (see [`crate::live_query`] for the consistency model).
    pub fn live_snapshot(&mut self) -> LiveSnapshot {
        self.dispatch();
        LiveSnapshot::from_shards(self.barrier(Command::Live))
    }

    /// The engine watermark (minimum across populated shards), counting
    /// only applied events — the exact semantics of
    /// [`crate::ShardedEngine::watermark`].
    pub fn watermark(&self) -> Option<Timestamp> {
        self.barrier(Command::Report)
            .into_iter()
            .filter_map(|r| r.watermark)
            .min()
    }

    /// Aggregated counters across every worker.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        for report in self.barrier(Command::Report) {
            stats.absorb_shard(&report.stats, report.open_visits as u64);
        }
        stats
    }

    /// Flushes and captures one complete checkpoint as frames (one per
    /// shard, sharing a fresh sequence).
    pub fn checkpoint_frames(&mut self) -> Vec<CheckpointFrame> {
        self.dispatch();
        self.sequence += 1;
        let sequence = self.sequence;
        self.barrier(Command::Snapshot)
            .into_iter()
            .enumerate()
            .map(|(i, snapshot)| CheckpointFrame {
                sequence,
                shard: i as u32,
                shard_count: self.config.shards as u32,
                payload: encode_shard(&snapshot, self.config.predicates.len()),
            })
            .collect()
    }

    /// Persists a consistent snapshot of every shard into `log`, then
    /// fsyncs. Same recovery contract as
    /// [`crate::ShardedEngine::checkpoint`]: exactly-once relative to
    /// `drain`.
    pub fn checkpoint(&mut self, log: &mut LogStore<CheckpointFrame>) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        crate::checkpoint::append_and_sync(log, &frames)?;
        Ok(sequence)
    }

    /// Checkpoints through a compacting [`Checkpointer`], keeping the
    /// log bounded. Returns the sequence.
    pub fn checkpoint_into(&mut self, checkpointer: &mut Checkpointer) -> Result<u64, EngineError> {
        let frames = self.checkpoint_frames();
        let sequence = frames[0].sequence;
        checkpointer.commit(frames)?;
        Ok(sequence)
    }
}

impl Drop for ParallelEngine {
    /// Closes every command channel and joins the workers. Events still
    /// sitting in router batches are dropped — like the sequential
    /// engine, dropping without `drain`/`finish`/`checkpoint` abandons
    /// unflushed work. A worker that panicked is joined and ignored
    /// (its panic already surfaced on the engine thread if any call
    /// touched it); double panics during unwinding are avoided.
    fn drop(&mut self) {
        for worker in &mut self.workers {
            drop(worker.tx.take());
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                // Keep drop infallible: a worker that panicked already
                // printed its panic; joining just reclaims the thread.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{sort_feed, VisitKey};
    use crate::ShardedEngine;
    use sitm_core::{
        Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn config(shards: usize) -> EngineConfig {
        EngineConfig::new(vec![
            (IntervalPredicate::in_cells([cell(1)]), label("one")),
            (IntervalPredicate::any(), label("whole")),
        ])
        .with_shards(shards)
        .with_batch_capacity(4)
        .with_channel_depth(2)
    }

    fn feed() -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for v in 0..12u64 {
            let base = v as i64 * 10;
            events.push(StreamEvent::VisitOpened {
                visit: VisitKey(v),
                moving_object: format!("mo-{v}"),
                annotations: label("visit"),
                at: Timestamp(base),
            });
            for (i, c) in [1usize, 0, 1].iter().enumerate() {
                events.push(StreamEvent::Presence {
                    visit: VisitKey(v),
                    interval: PresenceInterval::new(
                        TransitionTaken::Unknown,
                        cell(*c),
                        Timestamp(base + i as i64 * 100),
                        Timestamp(base + i as i64 * 100 + 50),
                    ),
                });
            }
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(base + 250),
            });
        }
        sort_feed(&mut events);
        events
    }

    #[test]
    fn matches_sequential_engine_for_every_worker_count() {
        let mut reference = ShardedEngine::new(config(2)).unwrap();
        reference.ingest_all(feed());
        let expected = reference.finish();
        for workers in [1usize, 2, 4, 8] {
            let mut engine = ParallelEngine::new(config(workers)).unwrap();
            assert_eq!(engine.workers(), workers);
            engine.ingest_all(feed());
            assert_eq!(engine.finish(), expected, "{workers} workers");
            let stats = engine.stats();
            assert_eq!(stats.visits_opened, 12);
            assert_eq!(stats.open_visits, 0);
        }
    }

    #[test]
    fn incremental_drains_are_consistent_cuts() {
        let events = feed();
        let mid = events.len() / 2;
        let mut engine = ParallelEngine::new(config(4)).unwrap();
        engine.ingest_all(events[..mid].to_vec());
        let mut delivered = engine.drain();
        engine.ingest_all(events[mid..].to_vec());
        delivered.extend(engine.finish());
        delivered.sort_by_key(|a| a.sort_key());

        let mut oneshot = ParallelEngine::new(config(4)).unwrap();
        oneshot.ingest_all(events);
        assert_eq!(delivered, oneshot.finish());
    }

    #[test]
    fn watermark_and_stats_are_aggregated() {
        let mut engine = ParallelEngine::new(config(3)).unwrap();
        assert_eq!(engine.watermark(), None);
        engine.ingest_all(feed());
        engine.flush();
        assert!(engine.watermark() >= Some(Timestamp(250)));
        let stats = engine.stats();
        assert_eq!(stats.visits_opened, 12);
        assert_eq!(stats.presences, 36);
        assert_eq!(stats.anomalies.total(), 0);
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(
            ParallelEngine::new(config(0)),
            Err(EngineError::ZeroShards)
        ));
    }

    #[test]
    fn checkpoint_restore_round_trips_across_threads() {
        let events = feed();
        let mid = events.len() / 2;
        let path = std::env::temp_dir().join(format!(
            "sitm-parallel-ckpt-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut reference = ParallelEngine::new(config(4)).unwrap();
        reference.ingest_all(events.iter().cloned());
        let expected = reference.finish();

        let mut delivered;
        {
            let mut engine = ParallelEngine::new(config(4)).unwrap();
            engine.ingest_all(events[..mid].iter().cloned());
            delivered = engine.drain();
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).unwrap();
            engine.checkpoint(&mut log).unwrap();
        }
        let (mut restored, _log, report) =
            crate::checkpoint::resume_parallel_from_log(config(4), &path).unwrap();
        assert!(report.is_clean());
        restored.ingest_all(events[mid..].iter().cloned());
        delivered.extend(restored.finish());
        delivered.sort_by_key(|a| a.sort_key());
        assert_eq!(delivered, expected);
        let _ = std::fs::remove_file(&path);
    }
}
