//! The per-visit state machine: one trajectory under construction.
//!
//! A visit consumes its slice of the event stream in arrival order,
//! enforcing the same invariants `sitm_core::Trace` enforces in batch
//! (non-decreasing tuple starts, single detection layer) — except that a
//! violating event is *dropped and counted* instead of failing the whole
//! trace, because a live stream has no way to reject history.

use sitm_core::{
    AnnotationSet, Episode, IntervalPredicate, PresenceInterval, SemanticTrajectory, Timestamp,
    Trace, TransitionTaken,
};
use sitm_graph::LayerIdx;
use sitm_space::CellRef;

use crate::segmenter::{IncrementalSegmenter, SegmenterSnapshot};
use crate::shard::ShardCtx;

/// Counters for events the engine had to reject or adapt. Mirrors the
/// failure modes of the batch validators (`TraceError`,
/// `TrajectoryError::NotProper`) plus stream-only conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Anomalies {
    /// Intervals dropped for starting before their predecessor
    /// (batch: `TraceError::OutOfOrder`).
    pub out_of_order: u64,
    /// Intervals dropped for referencing a different layer than the
    /// visit's detection layer (batch: `TraceError::MixedLayers`).
    pub mixed_layer: u64,
    /// Zero-duration intervals filtered when the engine is configured to
    /// drop them (§4.1's detection errors).
    pub instantaneous_dropped: u64,
    /// Observations for visits never opened: the engine opens them
    /// implicitly rather than losing data.
    pub implicit_opens: u64,
    /// Events for already-closed (or never-opened-then-closed) visits.
    pub after_close: u64,
    /// Per-visit predicate suppressions under Def. 3.4(2)
    /// (batch: `TrajectoryError::NotProper`).
    pub not_proper: u64,
    /// Re-opens of an already-open visit (metadata update ignored).
    pub duplicate_opens: u64,
}

impl Anomalies {
    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.out_of_order
            + self.mixed_layer
            + self.instantaneous_dropped
            + self.implicit_opens
            + self.after_close
            + self.not_proper
            + self.duplicate_opens
    }

    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: &Anomalies) {
        self.out_of_order += other.out_of_order;
        self.mixed_layer += other.mixed_layer;
        self.instantaneous_dropped += other.instantaneous_dropped;
        self.implicit_opens += other.implicit_opens;
        self.after_close += other.after_close;
        self.not_proper += other.not_proper;
        self.duplicate_opens += other.duplicate_opens;
    }
}

/// An in-flight presence interval being coalesced from raw fixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFix {
    /// Cell the fixes land in.
    pub cell: CellRef,
    /// First fix instant.
    pub start: Timestamp,
    /// Most recent fix instant.
    pub last_at: Timestamp,
}

/// Serializable visit state.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitSnapshot {
    /// Moving-object identifier.
    pub moving_object: String,
    /// Trajectory-level annotations.
    pub annotations: AnnotationSet,
    /// Detection layer, once known.
    pub layer: Option<LayerIdx>,
    /// Start of the last accepted interval.
    pub last_start: Option<Timestamp>,
    /// Open fix-coalescing state.
    pub open_fix: Option<OpenFix>,
    /// Segmenter state.
    pub segmenter: SegmenterSnapshot,
    /// Accepted intervals, retained only under
    /// [`ShardCtx::retain_intervals`] (live-query support).
    pub intervals: Vec<PresenceInterval>,
}

/// One visit's full online state.
#[derive(Debug)]
pub struct VisitState {
    /// Moving-object identifier (`IDmo`).
    pub moving_object: String,
    /// Trajectory-level annotations (`A_traj`).
    pub annotations: AnnotationSet,
    segmenter: IncrementalSegmenter,
    layer: Option<LayerIdx>,
    last_start: Option<Timestamp>,
    open_fix: Option<OpenFix>,
    intervals: Vec<PresenceInterval>,
}

impl VisitState {
    /// Opens a visit.
    pub fn new(
        moving_object: String,
        annotations: AnnotationSet,
        ctx: &ShardCtx<'_>,
        anomalies: &mut Anomalies,
    ) -> Self {
        let segmenter = IncrementalSegmenter::new(ctx.predicates, &annotations);
        anomalies.not_proper += segmenter.suppressed_count() as u64;
        VisitState {
            moving_object,
            annotations,
            segmenter,
            layer: None,
            last_start: None,
            open_fix: None,
            intervals: Vec::new(),
        }
    }

    /// Presence intervals accepted so far.
    pub fn intervals_seen(&self) -> usize {
        self.segmenter.index()
    }

    /// The intervals retained for live queries (empty unless
    /// [`ShardCtx::retain_intervals`] is set). The engines diff this
    /// slice around each event to feed the incremental
    /// [`crate::LiveIndex`] without widening the apply signatures.
    pub fn retained_intervals(&self) -> &[PresenceInterval] {
        &self.intervals
    }

    /// The trajectory prefix observed so far, when intervals are retained
    /// ([`ShardCtx::retain_intervals`]) and at least one was accepted.
    /// `None` with retention off, before the first accepted interval, or
    /// when the visit's annotation set is empty (Def. 3.1 requires a
    /// non-empty `A_traj`).
    pub fn live_trajectory(&self) -> Option<SemanticTrajectory> {
        if self.intervals.is_empty() {
            return None;
        }
        let trace = Trace::new(self.intervals.clone()).ok()?;
        SemanticTrajectory::new(self.moving_object.clone(), trace, self.annotations.clone()).ok()
    }

    /// Ingests a raw fix, possibly closing a coalesced presence interval.
    pub fn apply_fix(
        &mut self,
        cell: CellRef,
        at: Timestamp,
        ctx: &ShardCtx<'_>,
        out: &mut Vec<(usize, Episode)>,
        anomalies: &mut Anomalies,
    ) {
        match &mut self.open_fix {
            Some(open) if open.cell == cell => {
                if at < open.last_at {
                    anomalies.out_of_order += 1;
                } else {
                    open.last_at = at;
                }
            }
            _ => {
                if let Some(interval) = self.close_open_fix() {
                    self.feed(interval, ctx, out, anomalies);
                }
                if self.last_start.is_some_and(|last| at < last) {
                    anomalies.out_of_order += 1;
                } else {
                    self.open_fix = Some(OpenFix {
                        cell,
                        start: at,
                        last_at: at,
                    });
                }
            }
        }
    }

    /// Ingests a pre-formed presence interval.
    pub fn apply_presence(
        &mut self,
        interval: PresenceInterval,
        ctx: &ShardCtx<'_>,
        out: &mut Vec<(usize, Episode)>,
        anomalies: &mut Anomalies,
    ) {
        if let Some(coalesced) = self.close_open_fix() {
            self.feed(coalesced, ctx, out, anomalies);
        }
        self.feed(interval, ctx, out, anomalies);
    }

    /// Ends the visit: closes the open fix and every open run.
    pub fn close(
        &mut self,
        ctx: &ShardCtx<'_>,
        out: &mut Vec<(usize, Episode)>,
        anomalies: &mut Anomalies,
    ) {
        if let Some(interval) = self.close_open_fix() {
            self.feed(interval, ctx, out, anomalies);
        }
        self.segmenter.finish(out);
    }

    fn close_open_fix(&mut self) -> Option<PresenceInterval> {
        self.open_fix.take().map(|open| {
            PresenceInterval::new(
                TransitionTaken::Unknown,
                open.cell,
                open.start,
                open.last_at,
            )
        })
    }

    /// Validated hand-off into the segmenter (the streaming analogue of
    /// `Trace::push`).
    fn feed(
        &mut self,
        interval: PresenceInterval,
        ctx: &ShardCtx<'_>,
        out: &mut Vec<(usize, Episode)>,
        anomalies: &mut Anomalies,
    ) {
        if ctx.drop_instantaneous && interval.is_instantaneous() {
            anomalies.instantaneous_dropped += 1;
            return;
        }
        if self.last_start.is_some_and(|last| interval.start() < last) {
            anomalies.out_of_order += 1;
            return;
        }
        if self.layer.is_some_and(|layer| interval.cell.layer != layer) {
            anomalies.mixed_layer += 1;
            return;
        }
        self.layer.get_or_insert(interval.cell.layer);
        self.last_start = Some(interval.start());
        if ctx.retain_intervals {
            self.intervals.push(interval.clone());
        }
        self.segmenter.observe(ctx.predicates, &interval, out);
    }

    /// Captures checkpointable state.
    pub fn snapshot(&self) -> VisitSnapshot {
        VisitSnapshot {
            moving_object: self.moving_object.clone(),
            annotations: self.annotations.clone(),
            layer: self.layer,
            last_start: self.last_start,
            open_fix: self.open_fix.clone(),
            segmenter: self.segmenter.snapshot(),
            intervals: self.intervals.clone(),
        }
    }

    /// Rebuilds from a snapshot taken against the same predicate table.
    pub fn restore(
        snapshot: VisitSnapshot,
        predicates: &[(IntervalPredicate, AnnotationSet)],
    ) -> Self {
        VisitState {
            moving_object: snapshot.moving_object,
            annotations: snapshot.annotations,
            segmenter: IncrementalSegmenter::restore(predicates, snapshot.segmenter),
            layer: snapshot.layer,
            last_start: snapshot.last_start,
            open_fix: snapshot.open_fix,
            intervals: snapshot.intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, Duration};
    use sitm_graph::NodeId;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    fn preds() -> Vec<(IntervalPredicate, AnnotationSet)> {
        vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))]
    }

    fn ctx<'a>(
        predicates: &'a [(IntervalPredicate, AnnotationSet)],
        drop_instantaneous: bool,
    ) -> ShardCtx<'a> {
        ShardCtx {
            predicates,
            drop_instantaneous,
            batch_capacity: 1,
            allowed_lateness: Duration::hours(1),
            fence_capacity: 65_536,
            retain_intervals: false,
            retain_finished: false,
        }
    }

    fn new_state(anoms: &mut Anomalies) -> VisitState {
        VisitState::new("mo".into(), label("visit"), &ctx(&preds(), false), anoms)
    }

    #[test]
    fn fixes_coalesce_into_presence_intervals() {
        let preds = preds();
        let ctx = ctx(&preds, false);
        let mut anoms = Anomalies::default();
        let mut state = new_state(&mut anoms);
        let mut out = Vec::new();
        // Three fixes in cell 1, one in cell 0: one interval [0, 20] in
        // cell 1 closed by the cell change, then [20, 20] open in cell 0.
        state.apply_fix(cell(1), Timestamp(0), &ctx, &mut out, &mut anoms);
        state.apply_fix(cell(1), Timestamp(10), &ctx, &mut out, &mut anoms);
        state.apply_fix(cell(1), Timestamp(20), &ctx, &mut out, &mut anoms);
        assert!(out.is_empty());
        state.apply_fix(cell(0), Timestamp(25), &ctx, &mut out, &mut anoms);
        assert_eq!(state.intervals_seen(), 1);
        state.close(&ctx, &mut out, &mut anoms);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.time.start, Timestamp(0));
        assert_eq!(out[0].1.time.end, Timestamp(20));
        assert_eq!(anoms.total(), 0);
    }

    #[test]
    fn out_of_order_and_mixed_layer_are_dropped_and_counted() {
        let preds = preds();
        let ctx = ctx(&preds, false);
        let mut anoms = Anomalies::default();
        let mut state = new_state(&mut anoms);
        let mut out = Vec::new();
        let ok = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(1),
            Timestamp(100),
            Timestamp(200),
        );
        state.apply_presence(ok, &ctx, &mut out, &mut anoms);
        let stale = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(1),
            Timestamp(50),
            Timestamp(60),
        );
        state.apply_presence(stale, &ctx, &mut out, &mut anoms);
        assert_eq!(anoms.out_of_order, 1);
        let other_layer = PresenceInterval::new(
            TransitionTaken::Unknown,
            CellRef::new(LayerIdx::from_index(3), NodeId::from_index(0)),
            Timestamp(200),
            Timestamp(300),
        );
        state.apply_presence(other_layer, &ctx, &mut out, &mut anoms);
        assert_eq!(anoms.mixed_layer, 1);
        assert_eq!(state.intervals_seen(), 1, "both rejects left no trace");
    }

    #[test]
    fn instantaneous_filter_honours_config() {
        let preds = preds();
        let keep = ctx(&preds, false);
        let drop = ctx(&preds, true);
        let mut anoms = Anomalies::default();
        let mut state = new_state(&mut anoms);
        let mut out = Vec::new();
        let zero = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(1),
            Timestamp(5),
            Timestamp(5),
        );
        state.apply_presence(zero.clone(), &drop, &mut out, &mut anoms);
        assert_eq!(state.intervals_seen(), 0);
        assert_eq!(anoms.instantaneous_dropped, 1);
        state.apply_presence(zero, &keep, &mut out, &mut anoms);
        assert_eq!(state.intervals_seen(), 1, "kept when the filter is off");
    }

    #[test]
    fn snapshot_round_trips_through_restore() {
        let preds = preds();
        let ctx = ctx(&preds, false);
        let mut anoms = Anomalies::default();
        let mut state = new_state(&mut anoms);
        let mut out = Vec::new();
        state.apply_fix(cell(1), Timestamp(0), &ctx, &mut out, &mut anoms);
        let snap = state.snapshot();
        assert_eq!(snap.open_fix.as_ref().unwrap().cell, cell(1));
        let restored = VisitState::restore(snap.clone(), &preds);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn retention_exposes_the_live_trajectory_prefix() {
        let preds = preds();
        let retaining = ShardCtx {
            retain_intervals: true,
            ..ctx(&preds, false)
        };
        let mut anoms = Anomalies::default();
        let mut state = VisitState::new("mo".into(), label("visit"), &retaining, &mut anoms);
        let mut out = Vec::new();
        assert!(state.live_trajectory().is_none(), "nothing accepted yet");
        let stay = |c: usize, s: i64, e: i64| {
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(s),
                Timestamp(e),
            )
        };
        state.apply_presence(stay(1, 0, 10), &retaining, &mut out, &mut anoms);
        state.apply_presence(stay(0, 10, 30), &retaining, &mut out, &mut anoms);
        let live = state.live_trajectory().expect("prefix available");
        assert_eq!(live.trace().len(), 2);
        assert_eq!(live.span().end, Timestamp(30));
        // The prefix survives a checkpoint round-trip.
        let restored = VisitState::restore(state.snapshot(), &preds);
        assert_eq!(restored.live_trajectory().expect("restored prefix"), live);
        // Without retention the prefix is simply absent.
        let mut plain = new_state(&mut anoms);
        plain.apply_presence(stay(1, 0, 10), &ctx(&preds, false), &mut out, &mut anoms);
        assert!(plain.live_trajectory().is_none());
    }
}
