//! The ingestion vocabulary: events interleaved across concurrent visits.
//!
//! A producer (positioning pipeline, mobile app backend, the Louvre
//! replay adapter) emits a single time-ordered stream of events keyed by
//! visit. Two producer styles are supported and may be mixed:
//!
//! * **fix-level** — raw [`StreamEvent::Fix`]es; the engine coalesces
//!   consecutive same-cell fixes into presence intervals online;
//! * **detection-level** — pre-formed [`StreamEvent::Presence`]
//!   intervals (the shape the Louvre dataset ships in).

use sitm_core::{AnnotationSet, PresenceInterval, Timestamp};
use sitm_space::CellRef;

/// Stable identifier of one visit (one trajectory under construction).
///
/// Distinct from a *visitor* id: a returning visitor owns several visits,
/// each its own trajectory (Def. 3.1 couples a trajectory to one
/// `[tstart, tend]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VisitKey(pub u64);

impl std::fmt::Display for VisitKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "visit#{}", self.0)
    }
}

/// One element of the ingestion stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A visit begins: declares the moving object and the trajectory-level
    /// annotation set (`A_traj`, non-empty per Def. 3.1).
    VisitOpened {
        /// The visit.
        visit: VisitKey,
        /// Moving-object identifier (`IDmo`).
        moving_object: String,
        /// Whole-trajectory annotations.
        annotations: AnnotationSet,
        /// Open instant.
        at: Timestamp,
    },
    /// A raw position fix: the visitor is observed inside `cell` at `at`.
    Fix {
        /// The visit.
        visit: VisitKey,
        /// Observed cell.
        cell: CellRef,
        /// Observation instant.
        at: Timestamp,
    },
    /// A completed presence detection (Def. 3.2 tuple).
    Presence {
        /// The visit.
        visit: VisitKey,
        /// The detection, with transition and per-stay annotations.
        interval: PresenceInterval,
    },
    /// The visit ended: flush open state, close remaining runs.
    VisitClosed {
        /// The visit.
        visit: VisitKey,
        /// Close instant.
        at: Timestamp,
    },
}

impl StreamEvent {
    /// The visit this event belongs to.
    pub fn visit(&self) -> VisitKey {
        match self {
            StreamEvent::VisitOpened { visit, .. }
            | StreamEvent::Fix { visit, .. }
            | StreamEvent::Presence { visit, .. }
            | StreamEvent::VisitClosed { visit, .. } => *visit,
        }
    }

    /// The event's timestamp (a presence is stamped by its start).
    pub fn time(&self) -> Timestamp {
        match self {
            StreamEvent::VisitOpened { at, .. } | StreamEvent::VisitClosed { at, .. } => *at,
            StreamEvent::Fix { at, .. } => *at,
            StreamEvent::Presence { interval, .. } => interval.start(),
        }
    }

    /// Ordering rank for same-instant events: opens before observations
    /// before closes, so a sorted feed replays causally.
    pub fn rank(&self) -> u8 {
        match self {
            StreamEvent::VisitOpened { .. } => 0,
            StreamEvent::Fix { .. } | StreamEvent::Presence { .. } => 1,
            StreamEvent::VisitClosed { .. } => 2,
        }
    }
}

/// Sorts a feed into replay order: by time, then causal rank, then visit.
/// The sort is stable, so a producer's per-visit event order survives ties.
pub fn sort_feed(events: &mut [StreamEvent]) {
    events.sort_by_key(|e| (e.time(), e.rank(), e.visit()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::TransitionTaken;
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    #[test]
    fn accessors_cover_all_variants() {
        let v = VisitKey(7);
        let open = StreamEvent::VisitOpened {
            visit: v,
            moving_object: "m".into(),
            annotations: AnnotationSet::new(),
            at: Timestamp(5),
        };
        let fix = StreamEvent::Fix {
            visit: v,
            cell: cell(1),
            at: Timestamp(6),
        };
        let presence = StreamEvent::Presence {
            visit: v,
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(2),
                Timestamp(7),
                Timestamp(9),
            ),
        };
        let close = StreamEvent::VisitClosed {
            visit: v,
            at: Timestamp(9),
        };
        assert!([&open, &fix, &presence, &close]
            .iter()
            .all(|e| e.visit() == v));
        assert_eq!(open.time(), Timestamp(5));
        assert_eq!(presence.time(), Timestamp(7));
        assert!(open.rank() < fix.rank() && fix.rank() < close.rank());
        assert_eq!(v.to_string(), "visit#7");
    }

    #[test]
    fn sort_feed_orders_causally_at_ties() {
        let v = VisitKey(1);
        let mut feed = vec![
            StreamEvent::VisitClosed {
                visit: v,
                at: Timestamp(10),
            },
            StreamEvent::Fix {
                visit: v,
                cell: cell(0),
                at: Timestamp(10),
            },
            StreamEvent::VisitOpened {
                visit: v,
                moving_object: "m".into(),
                annotations: AnnotationSet::new(),
                at: Timestamp(10),
            },
        ];
        sort_feed(&mut feed);
        assert!(matches!(feed[0], StreamEvent::VisitOpened { .. }));
        assert!(matches!(feed[1], StreamEvent::Fix { .. }));
        assert!(matches!(feed[2], StreamEvent::VisitClosed { .. }));
    }
}
