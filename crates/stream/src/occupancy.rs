//! Live occupancy derived from the event stream.
//!
//! Answers the operational question a streaming deployment exists for:
//! *how many visitors are inside each cell right now?* The tracker
//! consumes the same time-ordered feed the engine ingests, counting a
//! visitor into a cell over the span of each presence interval (or open
//! fix) and expiring them as the stream clock advances past the
//! interval's end.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use sitm_core::Timestamp;
use sitm_space::CellRef;

use crate::event::StreamEvent;

/// Streaming per-cell occupancy with peak tracking.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    current: BTreeMap<CellRef, u64>,
    peak: BTreeMap<CellRef, u64>,
    /// Pending departures, ordered soonest-first.
    departures: BinaryHeap<Reverse<(Timestamp, CellRef)>>,
    /// Fix-level producers: which cell each visit currently occupies.
    /// A visitor seen by a raw fix stays counted until their next fix in
    /// another cell, a presence event, or their visit closing.
    open_fixes: BTreeMap<u64, CellRef>,
    clock: Option<Timestamp>,
}

impl OccupancyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        OccupancyTracker::default()
    }

    /// Advances the clock to `now`, expiring every stay that ends at or
    /// before it.
    pub fn advance_to(&mut self, now: Timestamp) {
        self.clock = Some(self.clock.map_or(now, |c| c.max(now)));
        while let Some(Reverse((end, cell))) = self.departures.peek().copied() {
            if end > now {
                break;
            }
            self.departures.pop();
            self.leave(cell);
        }
    }

    /// Consumes one event from the time-ordered feed.
    pub fn observe(&mut self, event: &StreamEvent) {
        self.advance_to(event.time());
        match event {
            StreamEvent::Presence { visit, interval } => {
                // A presence supersedes any fix-derived occupancy for the
                // same visit (the engine coalesces the same way).
                self.release_fix(visit.0);
                if interval.is_instantaneous() {
                    return; // zero-duration detection errors never occupy
                }
                self.enter(interval.cell);
                self.departures
                    .push(Reverse((interval.end(), interval.cell)));
            }
            StreamEvent::Fix { visit, cell, .. } => {
                if self.open_fixes.get(&visit.0) == Some(cell) {
                    return; // still in the same cell
                }
                self.release_fix(visit.0);
                self.enter(*cell);
                self.open_fixes.insert(visit.0, *cell);
            }
            StreamEvent::VisitClosed { visit, .. } => {
                self.release_fix(visit.0);
            }
            StreamEvent::VisitOpened { .. } => {}
        }
    }

    fn enter(&mut self, cell: CellRef) {
        let n = self.current.entry(cell).or_insert(0);
        *n += 1;
        let peak = self.peak.entry(cell).or_insert(0);
        *peak = (*peak).max(*n);
    }

    fn leave(&mut self, cell: CellRef) {
        if let Some(n) = self.current.get_mut(&cell) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.current.remove(&cell);
            }
        }
    }

    fn release_fix(&mut self, visit: u64) {
        if let Some(cell) = self.open_fixes.remove(&visit) {
            self.leave(cell);
        }
    }

    /// Visitors currently inside each occupied cell.
    pub fn current(&self) -> &BTreeMap<CellRef, u64> {
        &self.current
    }

    /// Total visitors currently inside the space.
    pub fn total(&self) -> u64 {
        self.current.values().sum()
    }

    /// The maximum simultaneous occupancy each cell has seen.
    pub fn peak(&self) -> &BTreeMap<CellRef, u64> {
        &self.peak
    }

    /// The stream clock (time of the latest observed event).
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VisitKey;
    use sitm_core::{PresenceInterval, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn presence(v: u64, c: usize, start: i64, end: i64) -> StreamEvent {
        StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(start),
                Timestamp(end),
            ),
        }
    }

    #[test]
    fn counts_overlapping_stays_and_expires_them() {
        let mut tracker = OccupancyTracker::new();
        tracker.observe(&presence(1, 0, 0, 100));
        tracker.observe(&presence(2, 0, 10, 50));
        assert_eq!(tracker.current()[&cell(0)], 2);
        assert_eq!(tracker.total(), 2);
        // Visitor 2 leaves at 50; a later event advances the clock.
        tracker.observe(&presence(3, 1, 60, 90));
        assert_eq!(tracker.current()[&cell(0)], 1);
        assert_eq!(tracker.current()[&cell(1)], 1);
        assert_eq!(tracker.peak()[&cell(0)], 2);
        tracker.advance_to(Timestamp(200));
        assert_eq!(tracker.total(), 0);
        assert!(tracker.current().is_empty());
        assert_eq!(tracker.peak()[&cell(0)], 2, "peaks persist");
        assert_eq!(tracker.clock(), Some(Timestamp(200)));
    }

    #[test]
    fn fix_level_producers_are_counted() {
        let mut tracker = OccupancyTracker::new();
        let fix = |v: u64, c: usize, at: i64| StreamEvent::Fix {
            visit: VisitKey(v),
            cell: cell(c),
            at: Timestamp(at),
        };
        tracker.observe(&fix(1, 0, 0));
        tracker.observe(&fix(2, 0, 5));
        assert_eq!(tracker.current()[&cell(0)], 2);
        // Re-fix in the same cell: no double count.
        tracker.observe(&fix(1, 0, 10));
        assert_eq!(tracker.current()[&cell(0)], 2);
        // Moving to another cell transfers the visitor.
        tracker.observe(&fix(1, 1, 20));
        assert_eq!(tracker.current()[&cell(0)], 1);
        assert_eq!(tracker.current()[&cell(1)], 1);
        assert_eq!(tracker.peak()[&cell(0)], 2);
        // Closing the visit releases the fix-derived occupancy.
        tracker.observe(&StreamEvent::VisitClosed {
            visit: VisitKey(1),
            at: Timestamp(30),
        });
        assert_eq!(tracker.total(), 1, "only visitor 2 remains");
        tracker.observe(&StreamEvent::VisitClosed {
            visit: VisitKey(2),
            at: Timestamp(31),
        });
        assert_eq!(tracker.total(), 0);
    }

    #[test]
    fn zero_duration_detections_never_occupy() {
        let mut tracker = OccupancyTracker::new();
        tracker.observe(&presence(1, 0, 5, 5));
        assert_eq!(tracker.total(), 0);
    }

    #[test]
    fn non_presence_events_only_advance_the_clock() {
        let mut tracker = OccupancyTracker::new();
        tracker.observe(&presence(1, 0, 0, 10));
        tracker.observe(&StreamEvent::VisitClosed {
            visit: VisitKey(1),
            at: Timestamp(30),
        });
        assert_eq!(tracker.total(), 0, "close event expired the stay");
    }
}
